"""W600 — wire-protocol exhaustiveness.

The paper's entities exchange typed XML messages
(``protocol/messages.py``): each message class carries a ``TYPE``
string, serializes through ``body()``/``from_body()``, registers in
``MESSAGE_TYPES`` so ``decode`` can route it, and is handled by some
entity (``RegistryCore``, the monitor, the commander, the live
drivers).  Any link in that chain can drift independently — a class
missing from ``MESSAGE_TYPES`` encodes fine and raises only when the
*peer* tries to decode it.

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
W601      error     message class not registered in ``MESSAGE_TYPES``
W602      error     message class missing ``body()`` or ``from_body()``
W603      error     duplicate ``TYPE`` wire string (later registration
                    silently shadows the earlier class)
W604      error     message class never isinstance-handled outside the
                    protocol module — arrives and is dropped on the
                    floor
========  ========  =====================================================

The messages module is discovered by shape: at least two top-level
classes with a string ``TYPE`` class attribute plus a
``MESSAGE_TYPES`` registry assignment.  Silent when absent from the
linted file set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..diagnostics import Diagnostic, Severity
from .model import (
    PyModule,
    imports_from,
    isinstance_targets,
    module_basename,
    str_const,
)


@dataclass
class MessageClass:
    name: str
    lineno: int
    wire_type: str
    type_lineno: int
    methods: Set[str]


@dataclass
class WireContract:
    module: PyModule
    classes: List[MessageClass]
    #: Class names referenced in the MESSAGE_TYPES registry value.
    registered: Set[str]
    registry_lineno: int


def _message_class(node: ast.ClassDef) -> Optional[MessageClass]:
    wire_type: Optional[str] = None
    type_lineno = node.lineno
    methods: Set[str] = set()
    for stmt in node.body:
        if (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "TYPE"):
            wire_type = str_const(stmt.value)
            type_lineno = stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.add(stmt.name)
    if wire_type is None:
        return None
    return MessageClass(
        name=node.name, lineno=node.lineno, wire_type=wire_type,
        type_lineno=type_lineno, methods=methods,
    )


def find_wire_contract(module: PyModule) -> Optional[WireContract]:
    classes = [
        mc for mc in (
            _message_class(n) for n in module.tree.body
            if isinstance(n, ast.ClassDef)
        )
        if mc is not None
    ]
    if len(classes) < 2:
        return None
    registered: Optional[Set[str]] = None
    registry_lineno = 0
    for node in module.tree.body:
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "MESSAGE_TYPES"):
            registered = {
                n.id for n in ast.walk(node.value)
                if isinstance(n, ast.Name)
            }
            registry_lineno = node.lineno
    if registered is None:
        return None
    return WireContract(
        module=module, classes=classes, registered=registered,
        registry_lineno=registry_lineno,
    )


def handler_local_names(
    importer: PyModule, contract: WireContract
) -> Dict[str, str]:
    """Local name → class name for contract classes ``importer`` sees."""
    class_names = {mc.name for mc in contract.classes}
    return {
        local: orig
        for local, orig in imports_from(
            importer, module_basename(contract.module)
        ).items()
        if orig in class_names
    }


def lint_wire_protocol(modules: Sequence[PyModule]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    contracts = [
        c for c in (find_wire_contract(m) for m in modules)
        if c is not None
    ]
    for contract in contracts:
        module = contract.module

        by_type: Dict[str, MessageClass] = {}
        for mc in contract.classes:
            if mc.name not in contract.registered:
                diags.append(Diagnostic(
                    code="W601", severity=Severity.ERROR,
                    message=(
                        f"message class '{mc.name}' "
                        f"(TYPE={mc.wire_type!r}) is not registered "
                        "in MESSAGE_TYPES; decode() cannot route it"
                    ),
                    file=module.path, line=mc.lineno, obj=mc.name,
                ))
            for missing in sorted({"body", "from_body"} - mc.methods):
                diags.append(Diagnostic(
                    code="W602", severity=Severity.ERROR,
                    message=(
                        f"message class '{mc.name}' has no "
                        f"{missing}(); it cannot cross the wire"
                    ),
                    file=module.path, line=mc.lineno, obj=mc.name,
                ))
            earlier = by_type.get(mc.wire_type)
            if earlier is not None:
                diags.append(Diagnostic(
                    code="W603", severity=Severity.ERROR,
                    message=(
                        f"duplicate wire type {mc.wire_type!r}: "
                        f"'{mc.name}' collides with "
                        f"'{earlier.name}'; registration silently "
                        "shadows one of them"
                    ),
                    file=module.path, line=mc.type_lineno, obj=mc.name,
                ))
            else:
                by_type[mc.wire_type] = mc

        # W604: cross-module handler scan.  A message is handled when
        # any *other* linted module isinstance-checks it.  With no
        # importer in the file set at all (single-file lint run) the
        # handler information is simply absent — stay silent rather
        # than flag everything.
        handled: Set[str] = set()
        importers = 0
        for other in modules:
            if other is module:
                continue
            local_names = handler_local_names(other, contract)
            if local_names:
                importers += 1
                handled |= isinstance_targets(other.tree, local_names)
        if not importers:
            continue
        for mc in contract.classes:
            if mc.name in handled:
                continue
            diags.append(Diagnostic(
                code="W604", severity=Severity.ERROR,
                message=(
                    f"message class '{mc.name}' is never "
                    "isinstance-handled by any entity; it would "
                    "arrive and be dropped on the floor"
                ),
                file=module.path, line=mc.lineno, obj=mc.name,
            ))
    return diags
