"""M800 — message-flow analyzer: the protocol's send→handler graph.

W600 checks each message class can *cross* the wire; this family
checks it *arrives somewhere useful*.  From the wire contract
(``protocol/messages.py`` by shape), every constructor call outside
the contract module is an emit site and every isinstance dispatch is a
handler; the project model's import edges then split the handlers into
the simulation's view and the live runtime's view — the static twin of
the PR 4 decision-parity tests.

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
M801      error     message emitted somewhere but handled nowhere —
                    every send is dropped on arrival
M802      error     request message (``req_id`` correlation) with no
                    reply path: no function receives it and constructs
                    a reply-capable message
M803      warning   handler for a message nothing ever sends (dead
                    dispatch arm, or the sender was lost)
M804      error     sim and live handle different message sets; a
                    behaviour exists in one runtime but not the other
========  ========  =====================================================

Request/reply pairing (M802): a *request* is a message class carrying
a ``req_id`` field that is either built as the ``request=`` keyword of
a ``Query`` effect or whose wire TYPE ends in ``-request``; a *reply*
is any other ``req_id``-bearing class.  ``StatusQuery`` carries no
``req_id`` — its answer is the next ``StatusUpdate``, not a correlated
reply — so it is deliberately outside M802's scope.

Sides (M804): the live set is every module with a ``live`` path
segment plus everything it transitively imports; the sim set is every
module in sim scope (:func:`~.determinism.in_sim_scope`).  Shared
cores (``registry/core.py``) count for both — exactly the PR 4
one-decision-path design.  Silent unless the linted set contains both
sides; M801/M803 are silent when no module imports the contract at all
(single-file runs carry no flow information).
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from .determinism import in_sim_scope
from .model import (
    ProjectModel,
    PyModule,
    build_project,
    isinstance_targets,
    module_basename,
)
from .wire import WireContract, find_wire_contract, handler_local_names


def _is_live(path: str) -> bool:
    return "live" in PurePath(path).parts


def _class_fields(contract: WireContract) -> Dict[str, Set[str]]:
    """Message class name → its annotated dataclass field names."""
    fields: Dict[str, Set[str]] = {}
    names = {mc.name for mc in contract.classes}
    for node in contract.module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name in names:
            fields[node.name] = {
                stmt.target.id for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
    return fields


def _emit_sites(
    module: PyModule,
    local_names: Dict[str, str],
    basename: str,
    class_names: Set[str],
) -> List[Tuple[str, int]]:
    """(class name, line) for every message construction in ``module``.

    Covers both ``CandidateReply(...)`` after a from-import and
    ``messages.CandidateReply(...)`` through a module alias.
    """
    sites: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in local_names:
            sites.append((local_names[func.id], node.lineno))
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in class_names):
            origin = module.aliases.get(func.value.id, "")
            if origin.split(".")[-1] == basename:
                sites.append((func.attr, node.lineno))
    return sites


def _request_classes(
    contract: WireContract,
    fields: Dict[str, Set[str]],
    modules: Sequence[PyModule],
) -> Set[str]:
    """Classes that open a correlated request/reply exchange."""
    correlated = {name for name, f in fields.items() if "req_id" in f}
    requests = {
        mc.name for mc in contract.classes
        if mc.name in correlated and mc.wire_type.endswith("-request")
    }
    # Also: anything built as the request= keyword of an effect call
    # (`Query(request=CandidateRequest(...))`).
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "request" or not isinstance(kw.value, ast.Call):
                    continue
                inner = kw.value.func
                if (isinstance(inner, ast.Name)
                        and inner.id in correlated):
                    requests.add(inner.id)
    return requests


def _has_reply_path(
    request: str,
    replies: Set[str],
    modules: Sequence[PyModule],
    contract: WireContract,
) -> bool:
    """Some function receives the request class and builds a reply."""
    for module in modules:
        if module is contract.module:
            continue
        local_names = handler_local_names(module, contract)
        request_locals = {
            local for local, orig in local_names.items() if orig == request
        }
        reply_locals = {
            local for local, orig in local_names.items() if orig in replies
        }
        if not request_locals or not reply_locals:
            continue
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = {
                n.id for n in ast.walk(fn) if isinstance(n, ast.Name)
            }
            if not (names & request_locals):
                continue
            for call in ast.walk(fn):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id in reply_locals):
                    return True
    return False


def lint_message_flow(
    modules: Sequence[PyModule],
    project: Optional[ProjectModel] = None,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    contracts = [
        c for c in (find_wire_contract(m) for m in modules)
        if c is not None
    ]
    if not contracts:
        return diags
    if project is None:
        project = build_project(modules)

    for contract in contracts:
        basename = module_basename(contract.module)
        class_names = {mc.name for mc in contract.classes}
        linenos = {mc.name: mc.lineno for mc in contract.classes}
        fields = _class_fields(contract)

        emits_by_module: Dict[str, List[Tuple[str, int]]] = {}
        handled_by_module: Dict[str, Set[str]] = {}
        importers = 0
        for module in modules:
            if module is contract.module:
                continue
            local_names = handler_local_names(module, contract)
            sites = _emit_sites(module, local_names, basename, class_names)
            if local_names or sites:
                importers += 1
            if sites:
                emits_by_module[module.path] = sites
            handled = isinstance_targets(module.tree, local_names)
            if handled:
                handled_by_module[module.path] = handled
        if not importers:
            continue

        all_handled: Set[str] = set()
        for handled in handled_by_module.values():
            all_handled |= handled
        all_emitted: Dict[str, Tuple[str, int]] = {}
        for path in sorted(emits_by_module):
            for name, line in emits_by_module[path]:
                all_emitted.setdefault(name, (path, line))

        # M801 — emitted, never handled.
        for name in sorted(all_emitted):
            if name in all_handled:
                continue
            path, line = all_emitted[name]
            diags.append(Diagnostic(
                code="M801", severity=Severity.ERROR,
                message=(
                    f"message '{name}' is emitted here but no entity "
                    "isinstance-handles it; every send is dropped on "
                    "arrival"
                ),
                file=path, line=line, obj=name,
            ))

        # M802 — request with no reply path.
        requests = _request_classes(contract, fields, modules)
        replies = {
            name for name, f in fields.items()
            if "req_id" in f and name not in requests
        }
        for request in sorted(requests):
            if _has_reply_path(request, replies, modules, contract):
                continue
            diags.append(Diagnostic(
                code="M802", severity=Severity.ERROR,
                message=(
                    f"request message '{request}' has no reply path: "
                    "no function receives it and constructs a "
                    "req_id-bearing reply; every Query against it "
                    "times out"
                ),
                file=contract.module.path,
                line=linenos.get(request), obj=request,
            ))

        # M803 — handled, never emitted.
        for name in sorted(all_handled):
            if name in all_emitted:
                continue
            handlers = sorted(
                p for p, handled in handled_by_module.items()
                if name in handled
            )
            diags.append(Diagnostic(
                code="M803", severity=Severity.WARNING,
                message=(
                    f"message '{name}' is isinstance-handled (in "
                    f"{handlers[0]}) but nothing in the linted set "
                    "ever constructs it; dead dispatch arm or lost "
                    "sender"
                ),
                file=contract.module.path,
                line=linenos.get(name), obj=name,
            ))

        # M804 — sim/live handler divergence.
        live_roots = [m for m in modules if _is_live(m.path)]
        sim_paths = {m.path for m in modules if in_sim_scope(m.path)}
        if not live_roots or not sim_paths:
            continue
        live_closure = project.import_closure(live_roots)
        live_handled: Set[str] = set()
        sim_handled: Set[str] = set()
        for path, handled in handled_by_module.items():
            if path in live_closure:
                live_handled |= handled
            if path in sim_paths:
                sim_handled |= handled
        for name in sorted(live_handled ^ sim_handled):
            present, absent = (
                ("sim", "live") if name in sim_handled
                else ("live", "sim")
            )
            diags.append(Diagnostic(
                code="M804", severity=Severity.ERROR,
                message=(
                    f"message '{name}' is handled by the {present} "
                    f"runtime but not the {absent} runtime; the "
                    "decision paths have diverged (PR 4 parity)"
                ),
                file=contract.module.path,
                line=linenos.get(name), obj=name,
            ))
    return diags
