"""Source-level contract analysis (``repro lint src/``).

Where the config passes (R/P/S) check what operators *write*, these
passes check what we *implement*: the cross-layer invariants the
runtime only holds together by convention.  Four families:

* **D300** — determinism sanitizer over sim-reachable modules
  (:mod:`.determinism`): the golden-trace gate's static half.
* **E400** — effect exhaustiveness over the core/driver split
  (:mod:`.effects`).
* **T500** — trace discipline against the EVENTS catalogue
  (:mod:`.tracedisc`).
* **W600** — wire-protocol exhaustiveness (:mod:`.wire`).

Findings can be silenced per line with ``# repro-lint: skip`` (all
codes) or ``# repro-lint: skip[D301,T505]``; a suppression naming a
code nothing emits is itself a warning (L005).  See
``docs/linting.md`` for the full catalogue.

Two families added by PR 6 are *whole-project* passes: they run over a
:class:`~.model.ProjectModel` (resolved import edges) built once per
lint run:

* **C700** — concurrency sanitizer over the live threading model
  (:mod:`.concurrency`).
* **M800** — message-flow analyzer over the send→handler graph
  (:mod:`.msgflow`): the static twin of the decision-parity tests.

PR 10 adds the parity-and-drift layer:

* **V900** — twin-path parity over the mirrored scalar/vector
  decision-plane contracts (:mod:`.parity`, whole-project: V905
  splits effect pumps by runtime the way M804 splits handlers).
* **X900** — cross-artifact drift between code and its codecs, docs,
  benchmark baselines and fixtures (:mod:`.drift`).

The full code vocabulary lives in :mod:`repro.lint.catalog`; X902
keeps it and the ``docs/linting.md`` tables pointing at each other.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..catalog import KNOWN_CODES
from ..diagnostics import Diagnostic
from .concurrency import lint_concurrency
from .determinism import in_sim_scope, lint_determinism
from .drift import lint_drift
from .effects import lint_effects
from .model import (
    ProjectModel,
    PyModule,
    build_project,
    parse_sources,
    suppression_warnings,
)
from .msgflow import lint_message_flow
from .parity import lint_parity
from .tracedisc import lint_trace_discipline
from .wire import lint_wire_protocol

_PASSES = (
    lint_determinism,
    lint_effects,
    lint_trace_discipline,
    lint_wire_protocol,
    lint_drift,
)

#: Passes that consume the whole-project model (import edges).
_PROJECT_PASSES = (
    lint_concurrency,
    lint_message_flow,
    lint_parity,
)


def lint_sources(
    files: Sequence[Tuple[str, str]],
    jobs: int = 1,
) -> List[Diagnostic]:
    """Run every source pass over ``(path, text)`` pairs.

    Inline ``# repro-lint: skip[...]`` suppressions are applied to the
    pass findings (never to L004 parse errors), and unknown-code
    suppressions come back as L005 warnings.  ``jobs`` fans the
    per-file parse over a process pool (diagnostic order unchanged).
    """
    modules, diags = parse_sources(files, jobs=jobs)
    by_path = {m.path: m for m in modules}
    project = build_project(modules)

    def run(pass_diags):
        for diag in pass_diags:
            module = by_path.get(diag.file or "")
            if module is not None and module.suppressed(
                    diag.code, diag.line):
                continue
            diags.append(diag)

    for pass_fn in _PASSES:
        run(pass_fn(modules))
    for pass_fn in _PROJECT_PASSES:
        run(pass_fn(modules, project))
    diags.extend(suppression_warnings(modules, KNOWN_CODES))
    return diags


__all__ = [
    "KNOWN_CODES",
    "ProjectModel",
    "PyModule",
    "build_project",
    "in_sim_scope",
    "lint_concurrency",
    "lint_determinism",
    "lint_drift",
    "lint_effects",
    "lint_message_flow",
    "lint_parity",
    "lint_sources",
    "lint_trace_discipline",
    "lint_wire_protocol",
    "parse_sources",
]
