"""Shared AST plumbing for the source-level passes.

Each linted Python file becomes a :class:`PyModule`: its parsed tree,
an import-alias map (``np`` → ``numpy``, ``monotonic`` →
``time.monotonic``), and its inline suppressions.  The passes never
import or execute the code under analysis — everything here is pure
:mod:`ast` inspection, so fixtures with deliberately broken contracts
are safe to lint.

Contract modules (the effect outbox, the event catalogue, the wire
messages) are discovered by *shape*, not by path, so the passes work
unchanged on the real tree and on test fixtures.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic, Severity

#: ``# repro-lint: skip`` silences every source finding on its line;
#: ``skip[D301]`` / ``skip[D301,T505]`` silence only those codes.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*skip(?:\[(?P<codes>[^\]]*)\])?"
)


@dataclass
class Suppression:
    """One inline ``# repro-lint: skip[...]`` marker."""

    line: int
    #: ``None`` means every code is silenced on this line.
    codes: Optional[FrozenSet[str]]


@dataclass
class PyModule:
    """One parsed source file, ready for the passes."""

    path: str
    text: str
    tree: ast.Module
    #: local name → dotted origin (``np`` → ``numpy``,
    #: ``Send`` → ``entity.outbox.Send``).
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)

    def suppressed(self, code: str, line: Optional[int]) -> bool:
        if line is None:
            return False
        for sup in self.suppressions:
            if sup.line == line and (
                sup.codes is None or code in sup.codes
            ):
                return True
        return False


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            # Relative imports lose their dots: passes match on the
            # module *basename* anyway (``..entity.outbox`` and
            # ``outbox`` both end in ``outbox``).
            module = (node.module or "").lstrip(".")
            for name in node.names:
                local = name.asname or name.name
                origin = f"{module}.{name.name}" if module else name.name
                aliases[local] = origin
    return aliases


def _collect_suppressions(text: str) -> List[Suppression]:
    """Markers from real ``#`` comments only — a docstring *describing*
    the syntax must not silence anything."""
    found: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        raw = match.group("codes")
        if raw is None:
            found.append(Suppression(line=lineno, codes=None))
            continue
        codes = frozenset(
            c.strip().upper() for c in raw.split(",") if c.strip()
        )
        found.append(Suppression(line=lineno, codes=codes or None))
    return found


def parse_sources(
    files: Sequence[Tuple[str, str]],
) -> Tuple[List[PyModule], List[Diagnostic]]:
    """Parse ``(path, text)`` pairs; syntax errors become L004."""
    modules: List[PyModule] = []
    diags: List[Diagnostic] = []
    for path, text in files:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            diags.append(Diagnostic(
                code="L004", severity=Severity.ERROR,
                message=f"cannot parse Python source: {exc.msg}",
                file=path, line=exc.lineno,
            ))
            continue
        modules.append(PyModule(
            path=path, text=text, tree=tree,
            aliases=_collect_aliases(tree),
            suppressions=_collect_suppressions(text),
        ))
    return modules, diags


def suppression_warnings(
    modules: Sequence[PyModule], known_codes: FrozenSet[str]
) -> List[Diagnostic]:
    """L005: a suppression naming a code no pass can ever emit is a
    typo that silences nothing — surface it instead of honouring it."""
    diags: List[Diagnostic] = []
    for module in modules:
        for sup in module.suppressions:
            for code in sorted(sup.codes or ()):
                if code not in known_codes:
                    diags.append(Diagnostic(
                        code="L005", severity=Severity.WARNING,
                        message=(
                            f"suppression names unknown code "
                            f"{code!r} (nothing emits it)"
                        ),
                        file=module.path, line=sup.line,
                    ))
    return diags


def dotted_name(module: PyModule, node: ast.AST) -> Optional[str]:
    """Resolve a Name/Attribute chain to its dotted import origin.

    ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
    file did ``import numpy as np``; ``monotonic`` →
    ``time.monotonic`` after ``from time import monotonic``.  Local
    variables (``self.rng.random``) resolve to nothing useful and the
    caller skips them.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.aliases.get(node.id, node.id)
    return ".".join([root] + list(reversed(parts)))


def imports_from(module: PyModule, basename: str) -> Dict[str, str]:
    """Names imported from any module whose basename is ``basename``.

    Returns local name → original name, so ``from ..entity.outbox
    import Send as S`` yields ``{"S": "Send"}``.
    """
    imported: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        mod = (node.module or "").lstrip(".")
        if not mod or mod.split(".")[-1] != basename:
            continue
        for name in node.names:
            imported[name.asname or name.name] = name.name
    return imported


def str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def top_level_classes(module: PyModule) -> List[ast.ClassDef]:
    return [n for n in module.tree.body if isinstance(n, ast.ClassDef)]


def module_basename(module: PyModule) -> str:
    name = module.path.replace("\\", "/").rsplit("/", 1)[-1]
    return name[:-3] if name.endswith(".py") else name
