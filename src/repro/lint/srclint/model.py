"""Shared AST plumbing for the source-level passes.

Each linted Python file becomes a :class:`PyModule`: its parsed tree,
an import-alias map (``np`` → ``numpy``, ``monotonic`` →
``time.monotonic``), and its inline suppressions.  The passes never
import or execute the code under analysis — everything here is pure
:mod:`ast` inspection, so fixtures with deliberately broken contracts
are safe to lint.

Contract modules (the effect outbox, the event catalogue, the wire
messages) are discovered by *shape*, not by path, so the passes work
unchanged on the real tree and on test fixtures.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity

#: ``# repro-lint: skip`` silences every source finding on its line;
#: ``skip[D301]`` / ``skip[D301,T505]`` silence only those codes.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*skip(?:\[(?P<codes>[^\]]*)\])?"
)


@dataclass
class Suppression:
    """One inline ``# repro-lint: skip[...]`` marker."""

    line: int
    #: ``None`` means every code is silenced on this line.
    codes: Optional[FrozenSet[str]]


@dataclass
class PyModule:
    """One parsed source file, ready for the passes."""

    path: str
    text: str
    tree: ast.Module
    #: local name → dotted origin (``np`` → ``numpy``,
    #: ``Send`` → ``entity.outbox.Send``).
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)

    def suppressed(self, code: str, line: Optional[int]) -> bool:
        if line is None:
            return False
        for sup in self.suppressions:
            if sup.line == line and (
                sup.codes is None or code in sup.codes
            ):
                return True
        return False


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            # Relative imports lose their dots: passes match on the
            # module *basename* anyway (``..entity.outbox`` and
            # ``outbox`` both end in ``outbox``).
            module = (node.module or "").lstrip(".")
            for name in node.names:
                local = name.asname or name.name
                origin = f"{module}.{name.name}" if module else name.name
                aliases[local] = origin
    return aliases


def _collect_suppressions(text: str) -> List[Suppression]:
    """Markers from real ``#`` comments only — a docstring *describing*
    the syntax must not silence anything."""
    found: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            continue
        lineno = tok.start[0]
        raw = match.group("codes")
        if raw is None:
            found.append(Suppression(line=lineno, codes=None))
            continue
        codes = frozenset(
            c.strip().upper() for c in raw.split(",") if c.strip()
        )
        found.append(Suppression(line=lineno, codes=codes or None))
    return found


def _parse_one(
    item: Tuple[str, str],
) -> Tuple[Optional[PyModule], Optional[Diagnostic]]:
    """Parse one ``(path, text)`` pair (module-level: picklable, so
    ``parse_sources`` can fan it across a process pool)."""
    path, text = item
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return None, Diagnostic(
            code="L004", severity=Severity.ERROR,
            message=f"cannot parse Python source: {exc.msg}",
            file=path, line=exc.lineno,
        )
    return PyModule(
        path=path, text=text, tree=tree,
        aliases=_collect_aliases(tree),
        suppressions=_collect_suppressions(text),
    ), None


def parse_sources(
    files: Sequence[Tuple[str, str]],
    jobs: int = 1,
) -> Tuple[List[PyModule], List[Diagnostic]]:
    """Parse ``(path, text)`` pairs; syntax errors become L004.

    With ``jobs > 1`` the per-file parse fans out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results are
    collected in *plan order* (the order of ``files``), so parallel
    runs produce byte-identical diagnostics — the same contract
    ``perf/sweep.py`` keeps for experiment cells.
    """
    parsed: List[Tuple[Optional[PyModule], Optional[Diagnostic]]]
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_parse_one, item) for item in files]
            parsed = [f.result() for f in futures]  # plan order
    else:
        parsed = [_parse_one(item) for item in files]
    modules = [m for m, _ in parsed if m is not None]
    diags = [d for _, d in parsed if d is not None]
    return modules, diags


def suppression_warnings(
    modules: Sequence[PyModule], known_codes: FrozenSet[str]
) -> List[Diagnostic]:
    """L005: a suppression naming a code no pass can ever emit is a
    typo that silences nothing — surface it instead of honouring it."""
    diags: List[Diagnostic] = []
    for module in modules:
        for sup in module.suppressions:
            for code in sorted(sup.codes or ()):
                if code not in known_codes:
                    diags.append(Diagnostic(
                        code="L005", severity=Severity.WARNING,
                        message=(
                            f"suppression names unknown code "
                            f"{code!r} (nothing emits it)"
                        ),
                        file=module.path, line=sup.line,
                    ))
    return diags


def dotted_name(module: PyModule, node: ast.AST) -> Optional[str]:
    """Resolve a Name/Attribute chain to its dotted import origin.

    ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
    file did ``import numpy as np``; ``monotonic`` →
    ``time.monotonic`` after ``from time import monotonic``.  Local
    variables (``self.rng.random``) resolve to nothing useful and the
    caller skips them.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.aliases.get(node.id, node.id)
    return ".".join([root] + list(reversed(parts)))


def imports_from(module: PyModule, basename: str) -> Dict[str, str]:
    """Names imported from any module whose basename is ``basename``.

    Returns local name → original name, so ``from ..entity.outbox
    import Send as S`` yields ``{"S": "Send"}``.
    """
    imported: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        mod = (node.module or "").lstrip(".")
        if not mod or mod.split(".")[-1] != basename:
            continue
        for name in node.names:
            imported[name.asname or name.name] = name.name
    return imported


def str_const(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def top_level_classes(module: PyModule) -> List[ast.ClassDef]:
    return [n for n in module.tree.body if isinstance(n, ast.ClassDef)]


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """True when the class carries a ``@dataclass`` decorator (bare,
    called, or ``dataclasses.dataclass`` attribute form).

    Shared by the effect-contract discovery (E400), the config-surface
    check (V904) and the codec-pairing check (X901)."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """Annotated field name → line number, in declaration order.

    Dunder/ClassVar-style plumbing is the caller's concern; this is
    the raw ``name: type`` surface of the class body."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)):
            fields[stmt.target.id] = stmt.lineno
    return fields


def module_basename(module: PyModule) -> str:
    name = module.path.replace("\\", "/").rsplit("/", 1)[-1]
    return name[:-3] if name.endswith(".py") else name


def isinstance_targets(
    body: ast.AST, local_names: Dict[str, str]
) -> Set[str]:
    """Origin names of ``local_names`` entries that ``body``
    isinstance-dispatches on (second argument, tuples included).

    The one definition of "this module handles that class" shared by
    the wire (W604), effect (E402) and message-flow (M80x) passes.
    """
    found: Set[str] = set()
    for node in ast.walk(body):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "isinstance"
                and len(node.args) == 2):
            continue
        second = node.args[1]
        candidates = (
            [second] if isinstance(second, ast.Name)
            else list(second.elts) if isinstance(second, ast.Tuple)
            else []
        )
        for name in candidates:
            if isinstance(name, ast.Name) and name.id in local_names:
                found.add(local_names[name.id])
    return found


# --------------------------------------------------------------------------
# Whole-project semantic model
# --------------------------------------------------------------------------

def _path_parts(path: str) -> Tuple[str, ...]:
    """``src/repro/live/node.py`` → ``('src', 'repro', 'live', 'node')``;
    an ``__init__.py`` identifies its package directory."""
    norm = os.path.normpath(path).replace("\\", "/")
    parts = [p for p in norm.split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    return tuple(parts)


@dataclass
class ProjectModel:
    """The linted file set as one program: which module imports which.

    Imports are resolved *by path* — relative imports walk up from the
    importing file, absolute imports suffix-match the dotted name
    against the file set — so three different ``core.py`` modules
    never collide the way basename matching would collide them.
    Cross-module passes (C700, M800) lean on this to tell the live
    runtime's import closure apart from the simulation's.
    """

    modules: List[PyModule]
    #: importing module path → paths of project modules it imports.
    imports: Dict[str, Set[str]]

    def module_at(self, path: str) -> Optional[PyModule]:
        for module in self.modules:
            if module.path == path:
                return module
        return None

    def import_closure(self, roots: Sequence[PyModule]) -> Set[str]:
        """Paths of every module transitively imported by ``roots``
        (the roots themselves included)."""
        seen: Set[str] = set()
        stack = [m.path for m in roots]
        while stack:
            path = stack.pop()
            if path in seen:
                continue
            seen.add(path)
            stack.extend(sorted(self.imports.get(path, ())))
        return seen


def _resolve_import_from(
    parts: Tuple[str, ...],
    node: ast.ImportFrom,
    by_parts: Dict[Tuple[str, ...], str],
    suffixes: Dict[str, List[Tuple[str, ...]]],
) -> Set[str]:
    """Project-module paths one ``from X import Y`` statement names."""
    found: Set[str] = set()
    mod_parts = tuple(node.module.split(".")) if node.module else ()
    if node.level:
        # Relative: anchor at the importing file's package, one level
        # up per extra dot.
        package = parts[:-1]
        if node.level - 1 > len(package):
            return found
        anchor = package[:len(package) - (node.level - 1)]
        bases = [anchor + mod_parts]
    else:
        # Absolute: suffix-match the dotted name against the file set.
        bases = [
            candidate for candidate in suffixes.get(
                mod_parts[-1] if mod_parts else "", []
            )
            if candidate[-len(mod_parts):] == mod_parts
        ] if mod_parts else []
    for base in bases:
        target = by_parts.get(base)
        if target is not None:
            found.add(target)
        for name in node.names:
            sub = by_parts.get(base + (name.name,))
            if sub is not None:
                found.add(sub)
    return found


def build_project(modules: Sequence[PyModule]) -> ProjectModel:
    """Resolve every import edge between modules of the linted set."""
    by_parts: Dict[Tuple[str, ...], str] = {}
    suffixes: Dict[str, List[Tuple[str, ...]]] = {}
    parts_of: Dict[str, Tuple[str, ...]] = {}
    for module in modules:
        parts = _path_parts(module.path)
        parts_of[module.path] = parts
        by_parts[parts] = module.path
        if parts:
            suffixes.setdefault(parts[-1], []).append(parts)
    imports: Dict[str, Set[str]] = {}
    for module in modules:
        edges: Set[str] = set()
        parts = parts_of[module.path]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                edges |= _resolve_import_from(
                    parts, node, by_parts, suffixes
                )
            elif isinstance(node, ast.Import):
                for name in node.names:
                    dotted = tuple(name.name.split("."))
                    for candidate in suffixes.get(dotted[-1], []):
                        if candidate[-len(dotted):] == dotted:
                            edges.add(by_parts[candidate])
        edges.discard(module.path)
        imports[module.path] = edges
    return ProjectModel(modules=list(modules), imports=imports)
