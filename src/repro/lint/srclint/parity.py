"""V900 — twin-path parity: the decision plane's mirrored contracts.

The decision plane is implemented twice on purpose — a scalar oracle
(readable, the paper's §4 semantics) and a vectorized fast path — and
the two are reconciled at runtime by the opt-in ``verify`` modes and
the differential tests.  Those only catch a forgotten twin when the
right test *runs*; this family proves the pairing statically, the way
E400 proves effect exhaustiveness.

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
V901      error     scalar strategy/predicate with no vector twin
                    registered (or a vector twin with no scalar, an
                    orphan ``vector_*`` function, a twin suffix —
                    ``_scalar``/``_vector`` — with no sibling)
V902      error     decision-plane vocabulary mismatch: the metric
                    column order is not ``sorted(KNOWN_METRICS)``, or
                    the monitor-script maps across modules disagree
V903      error     a selection sort key spelled inline instead of in
                    the shared sort-key contract module
V904      error     a verify-capable mode knob (``vector_mode``,
                    ``host_plane``, …) not threaded through any
                    ``*Config`` dataclass
V905      error     a core effect pumped by one runtime's driver
                    dispatch but not the other's
========  ========  =====================================================

Contracts are discovered by shape, never by repo path:

* **strategy registry** (V901) — a module assigning a str→function
  dict named ``STRATEGIES`` next to a function→function dict named
  ``VECTOR_STRATEGIES``;
* **metric vocabulary** (V902) — a ``METRIC_COLUMNS`` tuple of string
  literals anywhere in the set versus a ``KNOWN_METRICS`` set literal,
  plus every dict literal whose keys are ``*.sh`` script names;
* **sort-key contract** (V903) — the module defining both ``*_key``
  and ``*_lexsort_keys`` functions;
* **mode knobs** (V904) — an ALL-CAPS tuple of mode strings containing
  ``"verify"`` guarded by a ``raise ValueError(f"<knob> must be one
  of …")`` validation;
* **effect sides** (V905) — the E400 outbox contract, with the live
  side = modules under a ``live`` path segment plus their import
  closure and the sim side = sim-scope modules, exactly M804's split.

Each sub-check stays silent when its contract (or one of its two
sides) is absent from the linted set, so linting ``examples/`` or a
single file never fails for lack of a twin.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, Severity
from .determinism import in_sim_scope
from .effects import find_effect_contract
from .model import (
    ProjectModel,
    PyModule,
    dataclass_fields,
    imports_from,
    is_dataclass_def,
    isinstance_targets,
    module_basename,
    str_const,
)

#: The conventional names of the strategy registry pair (same
#: convention as ``MESSAGE_TYPES`` for the wire contract).
_SCALAR_REGISTRY = "STRATEGIES"
_VECTOR_REGISTRY = "VECTOR_STRATEGIES"

#: The metric vocabulary pair (V902a).
_COLUMNS_NAME = "METRIC_COLUMNS"
_METRICS_NAME = "KNOWN_METRICS"

#: Twin suffixes for V901b: a function ``X_scalar`` needs a sibling
#: ``X`` or ``X_vector`` in the same scope, and vice versa.
_TWIN_SUFFIXES = ("_scalar", "_vector")


def _is_live(path: str) -> bool:
    return "live" in PurePath(path).parts


def _top_level_assign(
    module: PyModule, name: str
) -> Optional[ast.Assign]:
    for node in module.tree.body:
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name):
            return node
    return None


def _str_elements(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a tuple/list/set literal (possibly
    wrapped in ``frozenset(...)``/``tuple(...)``); None otherwise."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "set", "tuple")
            and len(node.args) == 1):
        node = node.args[0]
    if not isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return None
    values = [str_const(e) for e in node.elts]
    if not values or any(v is None for v in values):
        return None
    return values  # type: ignore[return-value]


# ------------------------------------------------------------------ V901
def _check_strategy_registry(
    modules: Sequence[PyModule],
) -> List[Diagnostic]:
    """V901a: the str→fn registry versus its fn→fn vector twin map."""
    diags: List[Diagnostic] = []
    for module in modules:
        scalar = _top_level_assign(module, _SCALAR_REGISTRY)
        vector = _top_level_assign(module, _VECTOR_REGISTRY)
        if scalar is None or vector is None:
            continue
        if not (isinstance(scalar.value, ast.Dict)
                and isinstance(vector.value, ast.Dict)):
            continue
        scalar_fns = {
            v.id for v in scalar.value.values if isinstance(v, ast.Name)
        }
        twin_keys = {
            k.id for k in vector.value.keys if isinstance(k, ast.Name)
        }
        twin_values = {
            v.id for v in vector.value.values if isinstance(v, ast.Name)
        }
        top_fns = {
            n.name: n.lineno for n in module.tree.body
            if isinstance(n, ast.FunctionDef)
        }
        for name in sorted(scalar_fns - twin_keys):
            diags.append(Diagnostic(
                code="V901", severity=Severity.ERROR,
                message=(
                    f"scalar strategy '{name}' has no entry in "
                    f"{_VECTOR_REGISTRY}; the vector path cannot "
                    "honour it"
                ),
                file=module.path,
                line=top_fns.get(name, scalar.lineno), obj=name,
            ))
        for name in sorted(twin_keys - scalar_fns):
            diags.append(Diagnostic(
                code="V901", severity=Severity.ERROR,
                message=(
                    f"{_VECTOR_REGISTRY} twins '{name}' but it is not "
                    f"a registered {_SCALAR_REGISTRY} strategy"
                ),
                file=module.path, line=vector.lineno, obj=name,
            ))
        orphans = {
            name for name in top_fns
            if name.startswith("vector_") and name not in twin_values
        }
        for name in sorted(orphans):
            diags.append(Diagnostic(
                code="V901", severity=Severity.ERROR,
                message=(
                    f"vector implementation '{name}' is not registered "
                    f"as any strategy's twin in {_VECTOR_REGISTRY}"
                ),
                file=module.path, line=top_fns[name], obj=name,
            ))
        for name in sorted(twin_values - set(top_fns)):
            diags.append(Diagnostic(
                code="V901", severity=Severity.ERROR,
                message=(
                    f"{_VECTOR_REGISTRY} maps to '{name}' but no such "
                    "function is defined in the registry module"
                ),
                file=module.path, line=vector.lineno, obj=name,
            ))
    return diags


def _scope_functions(body: Sequence[ast.stmt]) -> Dict[str, int]:
    return {
        n.name: n.lineno for n in body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _check_suffix_twins(
    modules: Sequence[PyModule],
) -> List[Diagnostic]:
    """V901b: an ``X_scalar``/``X_vector`` definition needs its twin
    (or the unsuffixed canonical ``X``) in the same scope."""
    diags: List[Diagnostic] = []
    for module in modules:
        scopes = [_scope_functions(module.tree.body)]
        scopes += [
            _scope_functions(n.body) for n in module.tree.body
            if isinstance(n, ast.ClassDef)
        ]
        for names in scopes:
            for name, lineno in sorted(names.items()):
                for suffix in _TWIN_SUFFIXES:
                    if not name.endswith(suffix):
                        continue
                    base = name[:-len(suffix)]
                    if not base.strip("_"):
                        continue
                    other = _TWIN_SUFFIXES[
                        1 - _TWIN_SUFFIXES.index(suffix)
                    ]
                    if base in names or base + other in names:
                        continue
                    diags.append(Diagnostic(
                        code="V901", severity=Severity.ERROR,
                        message=(
                            f"'{name}' has no twin '{base}' or "
                            f"'{base}{other}' in its scope; the "
                            "paired implementation is gone"
                        ),
                        file=module.path, line=lineno, obj=name,
                    ))
    return diags


# ------------------------------------------------------------------ V902
def _check_metric_vocabulary(
    modules: Sequence[PyModule],
) -> List[Diagnostic]:
    """V902a: ``METRIC_COLUMNS`` must be ``sorted(KNOWN_METRICS)`` —
    the vector plane's column order versus the policy vocabulary."""
    columns: List[Tuple[PyModule, int, List[str]]] = []
    metrics: List[List[str]] = []
    for module in modules:
        node = _top_level_assign(module, _COLUMNS_NAME)
        if node is not None:
            values = _str_elements(node.value)
            if values is not None:
                columns.append((module, node.lineno, values))
        node = _top_level_assign(module, _METRICS_NAME)
        if node is not None:
            values = _str_elements(node.value)
            if values is not None:
                metrics.append(values)
    diags: List[Diagnostic] = []
    if not columns or not metrics:
        return diags
    # Distinct vocabularies only: two modules restating the same set
    # (e.g. two fixture trees) should not double-fire the mismatch.
    distinct = {frozenset(known): known for known in metrics}
    for module, lineno, cols in columns:
        for known in distinct.values():
            expected = sorted(set(known))
            if list(cols) == expected:
                continue
            missing = sorted(set(known) - set(cols))
            extra = sorted(set(cols) - set(known))
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extra {extra}")
            if not detail:
                detail.append("order differs from sorted()")
            diags.append(Diagnostic(
                code="V902", severity=Severity.ERROR,
                message=(
                    f"{_COLUMNS_NAME} is not sorted({_METRICS_NAME}): "
                    + ", ".join(detail)
                ),
                file=module.path, line=lineno, obj=_COLUMNS_NAME,
            ))
    return diags


def _script_vocabulary(
    module: PyModule,
) -> Optional[Tuple[int, Set[str]]]:
    """Union of ``*.sh`` keys over the module's script-map dict
    literals (≥3 all-string keys each ending in ``.sh``)."""
    lineno: Optional[int] = None
    scripts: Set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Dict) or len(node.keys) < 3:
            continue
        keys = [str_const(k) if k is not None else None
                for k in node.keys]
        if any(k is None or not k.endswith(".sh") for k in keys):
            continue
        scripts |= set(keys)  # type: ignore[arg-type]
        if lineno is None:
            lineno = node.lineno
    if lineno is None:
        return None
    return lineno, scripts


def _check_script_vocabulary(
    modules: Sequence[PyModule],
) -> List[Diagnostic]:
    """V902b: every module mapping monitor scripts must know the same
    script set — a script wired into the rule engine but absent from
    the column engine is a silently-dead metric."""
    vocab: List[Tuple[PyModule, int, Set[str]]] = []
    for module in modules:
        found = _script_vocabulary(module)
        if found is not None:
            vocab.append((module, found[0], found[1]))
    diags: List[Diagnostic] = []
    if len(vocab) < 2:
        return diags
    union: Set[str] = set()
    for _, _, scripts in vocab:
        union |= scripts
    for module, lineno, scripts in vocab:
        for script in sorted(union - scripts):
            diags.append(Diagnostic(
                code="V902", severity=Severity.ERROR,
                message=(
                    f"monitor script '{script}' is mapped elsewhere "
                    "but missing from this module's script map"
                ),
                file=module.path, line=lineno, obj=script,
            ))
    return diags


# ------------------------------------------------------------------ V903
def _find_sortkey_contracts(
    modules: Sequence[PyModule],
) -> List[PyModule]:
    found: List[PyModule] = []
    for module in modules:
        names = [
            n.name for n in module.tree.body
            if isinstance(n, ast.FunctionDef)
        ]
        if (any(n.endswith("_lexsort_keys") for n in names)
                and any(n.endswith("_key") for n in names)):
            found.append(module)
    return found


def _check_sort_keys(modules: Sequence[PyModule]) -> List[Diagnostic]:
    """V903: selection orderings must come from the one contract
    module — an inline lexsort column stack or composite key lambda is
    a second, unreconciled copy of the ordering."""
    contracts = _find_sortkey_contracts(modules)
    if not contracts:
        return []
    basenames = sorted({module_basename(c) for c in contracts})
    basename = basenames[0]
    diags: List[Diagnostic] = []
    for module in modules:
        if any(module is c for c in contracts):
            continue
        imports_contract = any(
            imports_from(module, b) for b in basenames
        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if callee == "lexsort":
                if node.args and isinstance(node.args[0], ast.Call):
                    continue
                diags.append(Diagnostic(
                    code="V903", severity=Severity.ERROR,
                    message=(
                        "lexsort called with inline key columns; "
                        f"define the ordering in {basename}.py so "
                        "both paths share one key"
                    ),
                    file=module.path, line=node.lineno,
                ))
            elif (imports_contract
                    and callee in ("sorted", "min", "max", "sort")):
                for kw in node.keywords:
                    if (kw.arg == "key"
                            and isinstance(kw.value, ast.Lambda)
                            and isinstance(kw.value.body, ast.Tuple)):
                        diags.append(Diagnostic(
                            code="V903", severity=Severity.ERROR,
                            message=(
                                "inline composite sort key; move it "
                                f"to {basename}.py next to the "
                                "lexsort twin"
                            ),
                            file=module.path, line=kw.value.lineno,
                        ))
    return diags


# ------------------------------------------------------------------ V904
def _mode_constants(module: PyModule) -> Dict[str, int]:
    """ALL-CAPS tuple-of-strings assignments containing ``"verify"``."""
    found: Dict[str, int] = {}
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        name = node.targets[0].id
        if name != name.upper():
            continue
        values = _str_elements(node.value)
        if values and len(values) >= 2 and "verify" in values:
            found[name] = node.lineno
    return found


def _knob_for_modes(
    module: PyModule, modes_name: str
) -> Optional[Tuple[str, int]]:
    """The config-knob name a ``X not in MODES → raise ValueError``
    validation protects: the first word of the error f-string (the
    message names the *knob*, not the local parameter), falling back
    to the compared name."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not (isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotIn)
                and isinstance(test.comparators[0], ast.Name)
                and test.comparators[0].id == modes_name):
            continue
        fallback = (
            test.left.id if isinstance(test.left, ast.Name) else None
        )
        for inner in ast.walk(node):
            if not (isinstance(inner, ast.Raise)
                    and isinstance(inner.exc, ast.Call)
                    and isinstance(inner.exc.func, ast.Name)
                    and inner.exc.func.id == "ValueError"):
                continue
            for arg in inner.exc.args:
                if isinstance(arg, ast.JoinedStr):
                    for part in arg.values:
                        text = str_const(part)
                        if text and text.split():
                            return text.split()[0], inner.lineno
            if fallback:
                return fallback, inner.lineno
        if fallback:
            return fallback, node.lineno
    return None


def _check_verify_knobs(
    modules: Sequence[PyModule],
) -> List[Diagnostic]:
    """V904: every verify-capable mode switch must be reachable from
    the config surface — a knob validated at construction but absent
    from every ``*Config`` dataclass cannot be turned on end-to-end."""
    config_fields: Set[str] = set()
    have_config = False
    for module in modules:
        for node in module.tree.body:
            if (isinstance(node, ast.ClassDef)
                    and node.name.endswith("Config")
                    and is_dataclass_def(node)):
                have_config = True
                config_fields |= set(dataclass_fields(node))
    if not have_config:
        return []
    diags: List[Diagnostic] = []
    for module in modules:
        for modes_name, _ in sorted(_mode_constants(module).items()):
            knob = _knob_for_modes(module, modes_name)
            if knob is None:
                continue
            name, lineno = knob
            if name in config_fields:
                continue
            diags.append(Diagnostic(
                code="V904", severity=Severity.ERROR,
                message=(
                    f"verify-capable knob '{name}' ({modes_name}) is "
                    "not a field of any *Config dataclass; the mode "
                    "cannot be selected from the config surface"
                ),
                file=module.path, line=lineno, obj=name,
            ))
    return diags


# ------------------------------------------------------------------ V905
def _check_effect_sides(
    modules: Sequence[PyModule], project: ProjectModel
) -> List[Diagnostic]:
    """V905: both runtimes must pump the same effect vocabulary.

    E402 already forces each *pump class* to cover the union; this is
    the cross-runtime half — an effect whose only live-side handling
    was deleted still leaves the sim green, exactly the drift the
    sim/live parity tests chase dynamically (M804's split, applied to
    effects instead of wire messages)."""
    diags: List[Diagnostic] = []
    contracts = [
        c for c in (find_effect_contract(m) for m in modules)
        if c is not None
    ]
    for contract in contracts:
        basename = module_basename(contract.module)
        handled_by: Dict[str, Set[str]] = {}
        for module in modules:
            if module is contract.module:
                continue
            imported = imports_from(module, basename)
            local = {
                loc: orig for loc, orig in imported.items()
                if orig in contract.effects
            }
            if not local:
                continue
            handled = isinstance_targets(module.tree, local)
            if handled:
                handled_by[module.path] = handled
        if not handled_by:
            continue
        live_roots = [m for m in modules if _is_live(m.path)]
        live_paths = (
            project.import_closure(live_roots) if live_roots else set()
        )
        live: Set[str] = set()
        sim: Set[str] = set()
        for path, handled in handled_by.items():
            if path in live_paths:
                live |= handled
            if in_sim_scope(path):
                sim |= handled
        if not live or not sim:
            continue  # one-runtime file sets carry no parity signal
        for name in sorted(live ^ sim):
            leading, lagging = (
                ("sim", "live") if name in sim else ("live", "sim")
            )
            diags.append(Diagnostic(
                code="V905", severity=Severity.ERROR,
                message=(
                    f"effect '{name}' is pumped by the {leading} "
                    f"runtime but not by the {lagging} driver's "
                    "dispatch"
                ),
                file=contract.module.path,
                line=contract.effect_linenos.get(name), obj=name,
            ))
    return diags


def lint_parity(
    modules: Sequence[PyModule], project: Optional[ProjectModel] = None
) -> List[Diagnostic]:
    """Run every V900 parity check over the parsed module set."""
    if project is None:
        from .model import build_project

        project = build_project(modules)
    diags: List[Diagnostic] = []
    diags.extend(_check_strategy_registry(modules))
    diags.extend(_check_suffix_twins(modules))
    diags.extend(_check_metric_vocabulary(modules))
    diags.extend(_check_script_vocabulary(modules))
    diags.extend(_check_sort_keys(modules))
    diags.extend(_check_verify_knobs(modules))
    diags.extend(_check_effect_sides(modules, project))
    return diags
