"""HPCM middleware errors."""

from __future__ import annotations


class HpcmError(Exception):
    """Base class for migration-middleware failures."""


class MigrationFailed(HpcmError):
    """A migration attempt could not complete; the process keeps
    running at the source (no partial results are lost)."""


class StateCaptureError(HpcmError):
    """The application state could not be serialized at a poll-point."""


class RepartitionError(HpcmError):
    """A world reshape could not split/merge the application state; the
    world keeps its old size and every rank resumes unchanged."""
