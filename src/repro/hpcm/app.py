"""The migratable-application contract.

HPCM's precompiler transforms C/Fortran programs so that all live data
is collectible at *poll-points*.  The Python analog is a contract: an
application keeps **all** of its live state in one picklable object and
advances in discrete steps; the gaps between steps are the poll-points
where the middleware may capture and move the state.

Implementations subclass :class:`MigratableApp`:

* :meth:`create_state` builds the initial state object;
* :meth:`run_step` is a *generator* advancing one step — it may yield
  compute jobs (``ctx.compute(...)``) and MPI operations
  (``yield from ctx.comm.send(...)``) and returns ``True`` while more
  steps remain;
* :meth:`finalize` extracts the final result from the state.

Malleable applications additionally override :meth:`repartition` —
merge the per-rank states of an N-rank world and re-split them for M
ranks — and declare a parallel-efficiency curve
(:meth:`efficiency_curve`); :meth:`malleable_schema` packages both into
an :class:`~repro.schema.ApplicationSchema` the registry can reshape
against.  :meth:`default_schema` stays rigid (``min_world == max_world
== 1``) so existing 1:1 migration behaviour is untouched.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, List

from ..schema import ApplicationSchema
from .errors import RepartitionError


class MigratableApp(abc.ABC):
    """Base class for applications runnable under HPCM."""

    #: Application name (used in schemas, process tables, traces).
    name: str = "app"

    @abc.abstractmethod
    def create_state(self, params: dict, rng: Any) -> Any:
        """Build the initial picklable state object."""

    @abc.abstractmethod
    def run_step(self, state: Any, ctx: Any):
        """Advance one step (a generator); return True while unfinished.

        Everything that must survive a migration lives in ``state``;
        local variables die at the poll-point.
        """

    def finalize(self, state: Any) -> Any:
        """Extract the result once :meth:`run_step` returns False."""
        return state

    def default_schema(self) -> ApplicationSchema:
        """Schema used when the caller does not provide one."""
        return ApplicationSchema(name=self.name)

    # -- malleability (N:M reshape) -------------------------------------
    def repartition(
        self, states: List[Any], new_size: int, params: dict, rng: Any
    ) -> List[Any]:
        """Merge ``len(states)`` per-rank states, re-split for ``new_size``.

        Called at a world-wide poll-point barrier with every live rank's
        state, in rank order; must return exactly ``new_size`` state
        objects (survivors keep rank order, fresh ranks append).  Raise
        :class:`~repro.hpcm.errors.RepartitionError` when the current
        phase cannot be reshaped — the world then resumes unchanged.
        """
        raise RepartitionError(
            f"application {self.name!r} does not support repartition"
        )

    def efficiency_curve(self) -> tuple:
        """Declared parallel efficiency at world sizes 1, 2, 3, …

        Empty (the default) means undeclared: the registry treats every
        size as perfectly efficient.  Malleable applications return a
        measured/modelled non-increasing curve.
        """
        return ()

    def malleable_schema(
        self, min_world: int = 1, max_world: int = 8
    ) -> ApplicationSchema:
        """The default schema plus this app's reshape envelope."""
        return dataclasses.replace(
            self.default_schema(),
            min_world=min_world,
            max_world=max_world,
            efficiency_curve=self.efficiency_curve(),
        )
