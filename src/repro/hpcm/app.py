"""The migratable-application contract.

HPCM's precompiler transforms C/Fortran programs so that all live data
is collectible at *poll-points*.  The Python analog is a contract: an
application keeps **all** of its live state in one picklable object and
advances in discrete steps; the gaps between steps are the poll-points
where the middleware may capture and move the state.

Implementations subclass :class:`MigratableApp`:

* :meth:`create_state` builds the initial state object;
* :meth:`run_step` is a *generator* advancing one step — it may yield
  compute jobs (``ctx.compute(...)``) and MPI operations
  (``yield from ctx.comm.send(...)``) and returns ``True`` while more
  steps remain;
* :meth:`finalize` extracts the final result from the state.
"""

from __future__ import annotations

import abc
from typing import Any

from ..schema import ApplicationSchema


class MigratableApp(abc.ABC):
    """Base class for applications runnable under HPCM."""

    #: Application name (used in schemas, process tables, traces).
    name: str = "app"

    @abc.abstractmethod
    def create_state(self, params: dict, rng: Any) -> Any:
        """Build the initial picklable state object."""

    @abc.abstractmethod
    def run_step(self, state: Any, ctx: Any):
        """Advance one step (a generator); return True while unfinished.

        Everything that must survive a migration lives in ``state``;
        local variables die at the poll-point.
        """

    def finalize(self, state: Any) -> Any:
        """Extract the result once :meth:`run_step` returns False."""
        return state

    def default_schema(self) -> ApplicationSchema:
        """Schema used when the caller does not provide one."""
        return ApplicationSchema(name=self.name)
