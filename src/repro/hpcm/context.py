"""The context object handed to application steps.

Rebinds automatically after a migration: ``ctx.host`` and ``ctx.comm``
always reflect the process's *current* placement, so application code
is location-transparent (the whole point of the middleware).
"""

from __future__ import annotations

from typing import Any


class AppContext:
    """Per-step application context (stable across migrations)."""

    def __init__(self, runtime: Any):
        self._rt = runtime

    # -- placement ------------------------------------------------------
    @property
    def env(self):
        return self._rt.env

    @property
    def now(self) -> float:
        return self._rt.env.now

    @property
    def host(self):
        """The host the process currently runs on."""
        return self._rt.host

    @property
    def process(self):
        return self._rt.process

    @property
    def rng(self):
        return self._rt.rng

    # -- compute ----------------------------------------------------------
    def compute(self, cpu_seconds: float, label: str = ""):
        """CPU work on the current host; yields until complete.

        ``cpu_seconds`` is work on a reference speed-1.0 machine; faster
        hosts finish sooner, contention stretches wall time.
        """
        return self._rt.host.cpu.execute(
            cpu_seconds, label=label or self._rt.app.name
        )

    def sleep(self, seconds: float):
        """Idle wait (no CPU use)."""
        return self._rt.env.timeout(seconds)

    # -- MPI ------------------------------------------------------------
    @property
    def comm(self):
        """The application's world communicator handle (rank-aware)."""
        comm = self._rt.comm
        if comm is None:
            raise RuntimeError(
                f"app {self._rt.app.name!r} was launched without an MPI "
                "world; use launch_world for multi-rank apps"
            )
        return comm

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def world_size(self) -> int:
        """World size, or 1 for an app launched without an MPI world.

        Unlike :attr:`size` this never raises, so applications can
        scale per-step behaviour (e.g. shared-I/O contention) whether
        or not they run multi-rank.
        """
        comm = self._rt.comm
        return comm.size if comm is not None else 1
