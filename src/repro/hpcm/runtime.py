"""HPCM runtime: runs a migratable application and carries migrations.

The migration protocol follows paper §3/§5.2 exactly:

1. the commander delivers a migration order (user-defined signal; the
   destination address travels in a temp file);
2. the application continues to its **nearest poll-point** (a step
   boundary);
3. the migrating process creates the *initialized process* on the
   destination via MPI-2 dynamic process management (LAM-like spawn
   latency) and gains an intercommunicator to it;
4. execution state (step counter + application schema) and memory state
   (the pickled application state) stream over the channel in chunks;
5. the initialized process **resumes execution before the transfer
   completes** — after the execution state plus an initial fraction of
   the memory state arrive, the remaining chunks drain in parallel with
   the resumed computation;
6. rank bindings in every application communicator are re-pointed at
   the new process, pending mailbox messages move with it, and the old
   process exits.
"""

from __future__ import annotations

import math
import os
import pickle
from typing import Any, Callable, List, Optional

from ..mpi.comm import Comm
from ..mpi.errors import SpawnError
from ..mpi.group import CommGroup
from ..mpi.process import MpiProcess
from ..mpi.runtime import MpiRuntime
from ..schema import ApplicationSchema
from ..trace import get_tracer
from ..trace.events import (
    EV_APP_FINISH,
    EV_APP_START,
    EV_HPCM_CAPTURE,
    EV_HPCM_DRAIN,
    EV_HPCM_MIGRATION,
    EV_HPCM_POLLPOINT,
    EV_HPCM_RESUME,
    EV_HPCM_SPAWN,
    EV_HPCM_TRANSFER,
)
from .app import MigratableApp
from .context import AppContext
from .record import MigrationOrder, MigrationRecord
from . import statexfer

#: Tags on the migration intercommunicator.
TAG_EXEC_STATE = 1
TAG_MEMORY_CHUNK = 2

#: Serialization throughput for state capture (bytes per CPU-second);
#: 2004-era data collection over in-memory buffers.
DEFAULT_SERIALIZE_RATE = 40e6

#: Number of chunks the memory state is cut into.
DEFAULT_CHUNKS = 8

#: Fraction of memory chunks that must arrive before execution resumes.
DEFAULT_RESUME_FRACTION = 0.25


class HpcmRuntime:
    """Runs one migration-enabled process (one MPI rank)."""

    def __init__(
        self,
        mpi: MpiRuntime,
        app: MigratableApp,
        process: MpiProcess,
        params: Optional[dict] = None,
        schema: Optional[ApplicationSchema] = None,
        comm: Optional[Comm] = None,
        rng: Any = None,
        chunks: int = DEFAULT_CHUNKS,
        resume_fraction: float = DEFAULT_RESUME_FRACTION,
        serialize_rate: float = DEFAULT_SERIALIZE_RATE,
        world: Any = None,
        initial_state: Any = None,
        initial_step: int = 0,
    ):
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        if not 0 < resume_fraction <= 1:
            raise ValueError("resume_fraction must lie in (0, 1]")
        self.mpi = mpi
        self.env = mpi.env
        self.app = app
        self.params = dict(params or {})
        self.schema = schema or app.default_schema()
        self.process = process
        self.comm = comm
        self.rng = rng
        self.chunks = int(chunks)
        self.resume_fraction = float(resume_fraction)
        self.serialize_rate = float(serialize_rate)
        #: The :class:`~repro.hpcm.world.HpcmWorld` reshape coordinator,
        #: or ``None`` for a rigid (1:1-migration-only) process.
        self.world = world
        #: A fresh rank joining mid-run starts from a repartitioned
        #: state instead of ``create_state``.
        self._initial_state = initial_state
        self._has_initial_state = initial_state is not None

        self.state: Any = None
        self.step_count = int(initial_step)
        # created → running → done / failed / retired (world shrank)
        self.status = "created"
        self.error: Optional[BaseException] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.result: Any = None
        self.migrations: List[MigrationRecord] = []
        #: Per-host wall-clock residency (host name → seconds), the
        #: source/destination split reported in Table 2.
        self.residency: dict = {}
        self._arrived_at = self.env.now
        self._pending_order: Optional[MigrationOrder] = None
        #: Pre-initialized standby processes by host name (ablation:
        #: "we can choose to improve this performance by pre-initializing
        #: the processes on the candidate destination machines").
        self._preinit: dict = {}
        self.done = self.env.event()
        self._bind(process)
        self._ctx = AppContext(self)
        self.sim_proc = self.env.process(
            self._main(), name=f"hpcm:{app.name}"
        )

    # -- public views -------------------------------------------------------
    @property
    def host(self):
        return self.process.host

    @property
    def migration_count(self) -> int:
        return len([m for m in self.migrations if m.succeeded])

    def estimated_completion(self) -> float:
        """Estimated absolute completion time from the schema.

        The paper's registry "gets the estimated execution time of the
        application from the application schema, and the start time of
        the application from the pid file time-stamp".
        """
        start = self.started_at if self.started_at is not None else self.env.now
        return self.schema.estimated_completion(start, self.host.cpu.speed)

    # -- the signal (commander → process) ---------------------------------
    def request_migration(self, order: MigrationOrder) -> None:
        """Deliver the migration command (the user-defined signal).

        The process acts on it at its next poll-point.  A newer order
        replaces an undelivered one.
        """
        if self.status in ("done", "failed"):
            return
        self._pending_order = order

    # -- pre-initialization (ablation) -----------------------------------
    def preinitialize(self, host: Any):
        """Warm up a standby daemon on ``host`` ahead of time.

        Pays the spawn latency now; later migrations to that host skip
        it ("we can choose to improve this performance by
        pre-initializing the processes on the candidate destination
        machines", §5.2).  Returns an event; the standby is usable once
        it fires.
        """
        def _do():
            yield self.env.timeout(self.mpi.spawn_latency)
            self._preinit[host.name] = True
            return host.name

        return self.env.process(_do(), name=f"preinit:{host.name}")

    # -- main loop ------------------------------------------------------
    def _main(self):
        self.status = "running"
        self.started_at = self.env.now
        self._arrived_at = self.env.now
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(EV_APP_START, t=self.env.now,
                         host=self.host.name, app=self.app.name)
        try:
            if self._has_initial_state:
                self.state = self._initial_state
                self._initial_state = None
            else:
                self.state = self.app.create_state(self.params, self.rng)
            more = True
            while more:
                order = self._pending_order
                if order is not None:
                    self._pending_order = None
                    yield from self._migrate(order)
                if self.world is not None and self.world.reshape_pending:
                    directive = yield from self.world.park(self)
                    if directive == "retire":
                        self._retire(tracer)
                        return
                more = yield from self.app.run_step(self.state, self._ctx)
                self.step_count += 1
        except BaseException as exc:
            self.status = "failed"
            self.error = exc
            self.finished_at = self.env.now
            self._settle_residency()
            if tracer.enabled:
                tracer.event(EV_APP_FINISH, t=self.env.now,
                             host=self.host.name, app=self.app.name,
                             status="failed")
            self.process.exit()
            if self.world is not None:
                self.world.rank_done(self)
            # Waiters on `done` see the exception; defusing keeps an
            # unobserved failure from aborting the whole simulation.
            self.done.fail(exc)
            self.done.defuse()
            return
        self.status = "done"
        self.finished_at = self.env.now
        self._settle_residency()
        if tracer.enabled:
            tracer.event(EV_APP_FINISH, t=self.env.now,
                         host=self.host.name, app=self.app.name,
                         status="done")
        self.result = self.app.finalize(self.state)
        self.schema = self.schema.updated_from_run(
            self.finished_at - self.started_at,
            cpu_speed=1.0,  # wall time normalized to the reference speed
        )
        self.done.succeed(self.result)
        self.process.exit()
        if self.world is not None:
            self.world.rank_done(self)

    def _retire(self, tracer) -> None:
        """This rank's world shrank away from under it: exit cleanly.

        The world already merged this rank's state into the survivors
        and removed the rank from the communicator, so there is no
        result to produce — waiters on ``done`` get ``None``.
        """
        self.status = "retired"
        self.finished_at = self.env.now
        self._settle_residency()
        if tracer.enabled:
            tracer.event(EV_APP_FINISH, t=self.env.now,
                         host=self.host.name, app=self.app.name,
                         status="retired")
        self.done.succeed(None)
        self.process.exit()

    # -- migration ------------------------------------------------------
    def _migrate(self, order: MigrationOrder):
        dest_host = self._resolve_order_host(order)
        rec = MigrationRecord(
            source=self.host.name,
            dest=dest_host.name,
            reason=order.reason,
            ordered_at=order.issued_at,
            decision_seconds=order.decision_seconds,
            pollpoint_at=self.env.now,
        )
        self.migrations.append(rec)
        tracer = get_tracer()
        mig_span = tracer.begin(
            EV_HPCM_MIGRATION, t=order.issued_at, host=self.host.name,
            app=self.app.name, source=self.host.name,
            dest=dest_host.name,
        ) if tracer.enabled else None
        if tracer.enabled:
            tracer.event(
                EV_HPCM_POLLPOINT, t=self.env.now, host=self.host.name,
                app=self.app.name, dest=dest_host.name,
                step=self.step_count,
            )
        if dest_host is self.host:
            rec.failure = "destination equals source"
            if mig_span is not None:
                mig_span.end(t=self.env.now, succeeded=False,
                             failure=rec.failure)
            return
        old_proc = self.process
        spawn_span = tracer.begin(
            EV_HPCM_SPAWN, t=self.env.now, host=dest_host.name,
            app=self.app.name, dest=dest_host.name,
        ) if tracer.enabled else None
        try:
            # 1. Initialized process on the destination (MPI-2 DPM);
            #    a pre-initialized standby skips the spawn latency.
            ready = self.env.event()
            transfer_done = self.env.event()
            warm = self._preinit.pop(dest_host.name, False)
            comm_self = self.mpi.comm_self(old_proc)
            icomm = yield from comm_self.spawn(
                _make_receiver(ready, transfer_done),
                [dest_host],
                name=f"init:{self.app.name}",
                latency=0.0 if warm else None,
            )
        except SpawnError as exc:
            rec.failure = f"spawn failed: {exc}"
            if spawn_span is not None:
                spawn_span.end(t=self.env.now, warm=warm)
            if mig_span is not None:
                mig_span.end(t=self.env.now, succeeded=False,
                             failure=rec.failure)
            return
        rec.spawned_at = self.env.now
        if spawn_span is not None:
            spawn_span.end(t=self.env.now, warm=warm)

        # 2. Capture memory state (real pickle; costs CPU on the source).
        capture_span = tracer.begin(
            EV_HPCM_CAPTURE, t=self.env.now, host=self.host.name,
            app=self.app.name,
        ) if tracer.enabled else None
        mem_blob = statexfer.capture(self.state)
        rec.memory_bytes = len(mem_blob)
        capture_work = len(mem_blob) / self.serialize_rate
        if capture_work > 0:
            yield self.host.cpu.execute(capture_work, label="hpcm-capture")
        if capture_span is not None:
            capture_span.end(t=self.env.now, bytes=len(mem_blob))
        chunks = statexfer.chunk(mem_blob, self.chunks)
        resume_after = max(1, math.ceil(len(chunks) * self.resume_fraction))
        exec_state = {
            "app": self.app.name,
            "step": self.step_count,
            "schema_xml": self.schema.to_xml(),
            "n_chunks": len(chunks),
            "resume_after": resume_after,
        }
        rec.exec_bytes = len(pickle.dumps(exec_state))

        # 3. Stream execution state, then memory chunks, from a helper
        #    process (HPCM's data-collection thread) so the resumed
        #    computation overlaps the drain.
        def _stream():
            yield from icomm.send(exec_state, dest=0, tag=TAG_EXEC_STATE)
            for piece in chunks:
                yield from icomm.send(piece, dest=0, tag=TAG_MEMORY_CHUNK)

        transfer_span = tracer.begin(
            EV_HPCM_TRANSFER, t=self.env.now, host=self.host.name,
            app=self.app.name, dest=dest_host.name,
            bytes=len(mem_blob), chunks=len(chunks),
        ) if tracer.enabled else None
        streamer = self.env.process(_stream(), name="hpcm-stream")

        # 4. Wait until the destination may resume (exec state + the
        #    initial fraction of memory chunks arrived).  A streamer
        #    failure (e.g. destination crash mid-transfer) aborts the
        #    migration; the process keeps running at the source and no
        #    partial results are lost.
        try:
            yield self.env.any_of([ready, streamer])
        except Exception as exc:
            rec.failure = f"transfer failed: {exc}"
            if transfer_span is not None:
                transfer_span.end(t=self.env.now)
            if mig_span is not None:
                mig_span.end(t=self.env.now, succeeded=False,
                             failure=rec.failure)
            return
        if not ready.triggered:  # pragma: no cover - defensive
            rec.failure = "receiver never became ready"
            if transfer_span is not None:
                transfer_span.end(t=self.env.now)
            if mig_span is not None:
                mig_span.end(t=self.env.now, succeeded=False,
                             failure=rec.failure)
            return
        receiver_proc = ready.value

        # 5. Switch over: restore state, re-point ranks, move mailbox.
        restored = statexfer.restore(mem_blob)
        for group in list(old_proc.groups):
            if not group.internal:
                group.replace(old_proc, receiver_proc)
        receiver_proc.adopt_state_from(old_proc)
        self._unbind(old_proc)
        self._bind(receiver_proc)
        self.state = restored
        if self.comm is not None:
            self.comm = self.comm.handle_for(receiver_proc)
        rec.resumed_at = self.env.now
        if tracer.enabled:
            tracer.event(
                EV_HPCM_RESUME, t=self.env.now, host=dest_host.name,
                app=self.app.name, source=rec.source,
            )
        drain_span = tracer.begin(
            EV_HPCM_DRAIN, t=self.env.now, host=dest_host.name,
            app=self.app.name,
        ) if tracer.enabled else None

        # 6. The drain and the source-side exit finish in the background.
        def _cleanup():
            try:
                yield streamer
                blob = yield transfer_done
            except Exception as exc:
                rec.failure = f"drain failed: {exc}"
                self._trace_drain_end(rec, transfer_span, drain_span,
                                      mig_span)
                old_proc.exit()
                return
            if blob != mem_blob:  # pragma: no cover - invariant
                rec.failure = "state corrupted in transit"
                self._trace_drain_end(rec, transfer_span, drain_span,
                                      mig_span)
                old_proc.exit()
                return
            rec.completed_at = self.env.now
            rec.succeeded = True
            self._trace_drain_end(rec, transfer_span, drain_span,
                                  mig_span)
            old_proc.exit()

        self.env.process(_cleanup(), name="hpcm-cleanup")

    def _trace_drain_end(self, rec, transfer_span, drain_span, mig_span):
        """Close the transfer/drain/migration spans when the drain ends."""
        now = self.env.now
        if transfer_span is not None:
            transfer_span.end(t=now)
        if drain_span is not None:
            drain_span.end(t=now, overlap_s=now - rec.resumed_at)
        if mig_span is not None:
            mig_span.end(t=now, succeeded=rec.succeeded,
                         failure=rec.failure)

    def _resolve_order_host(self, order: MigrationOrder):
        """Find the destination Host (reads the temp address file when
        the commander used one, per the paper's mechanism)."""
        name = order.dest_host
        if order.address_file:
            try:
                with open(order.address_file, "r", encoding="ascii") as fh:
                    name = fh.read().split()[0]
            finally:
                try:
                    os.unlink(order.address_file)
                except OSError:
                    pass
        return self.mpi.cluster.host(name)

    # -- bookkeeping ----------------------------------------------------
    def _bind(self, proc: MpiProcess) -> None:
        self.process = proc
        proc.proc_entry.hpcm_runtime = self
        proc.proc_entry.kind = "app"
        self._arrived_at = self.env.now

    def _unbind(self, proc: MpiProcess) -> None:
        dwell = self.env.now - self._arrived_at
        name = proc.host.name
        self.residency[name] = self.residency.get(name, 0.0) + dwell
        proc.proc_entry.hpcm_runtime = None

    def _settle_residency(self) -> None:
        name = self.process.host.name
        dwell = self.env.now - self._arrived_at
        self.residency[name] = self.residency.get(name, 0.0) + dwell


def _make_receiver(ready, transfer_done):
    """Build the destination-side half of the migration protocol.

    The receiver fires ``ready`` (with its :class:`MpiProcess`) once the
    execution state plus the initial fraction of memory chunks has
    arrived — the resume point — and ``transfer_done`` (with the
    reassembled byte stream) when everything has drained.
    """
    def receiver(ctx):
        exec_state = yield from ctx.parent.recv(tag=TAG_EXEC_STATE)
        n_chunks = exec_state["n_chunks"]
        resume_after = exec_state["resume_after"]
        buf = []
        for i in range(n_chunks):
            piece = yield from ctx.parent.recv(tag=TAG_MEMORY_CHUNK)
            buf.append(piece)
            if i + 1 == resume_after:
                ready.succeed(ctx.process)
        transfer_done.succeed(statexfer.join(buf))

    return receiver


def launch(
    mpi: MpiRuntime,
    app: MigratableApp,
    host: Any,
    params: Optional[dict] = None,
    schema: Optional[ApplicationSchema] = None,
    rng: Any = None,
    **kwargs: Any,
) -> HpcmRuntime:
    """Start a single-process migratable application on ``host``."""
    proc = MpiProcess(mpi, host, name=app.name)
    return HpcmRuntime(
        mpi, app, proc, params=params, schema=schema, rng=rng, **kwargs
    )


def launch_world(
    mpi: MpiRuntime,
    app_factory: Callable[[int], MigratableApp],
    hosts: list,
    params: Optional[dict] = None,
    schema: Optional[ApplicationSchema] = None,
    rng: Any = None,
    **kwargs: Any,
) -> List[HpcmRuntime]:
    """Start a multi-rank migratable MPI application.

    ``app_factory(rank)`` builds the per-rank application object; all
    ranks share a world communicator reachable as ``ctx.comm``.
    """
    if not hosts:
        raise ValueError("need at least one host")
    name = app_factory(0).name
    procs = [
        MpiProcess(mpi, host, name=f"{name}[{i}]")
        for i, host in enumerate(hosts)
    ]
    world = CommGroup(mpi, procs, label=f"{name}.world")
    runtimes = []
    for rank, proc in enumerate(procs):
        runtimes.append(
            HpcmRuntime(
                mpi,
                app_factory(rank),
                proc,
                params=params,
                schema=schema,
                comm=Comm(world, proc),
                rng=rng,
                **kwargs,
            )
        )
    return runtimes
