"""State capture, chunking and restoration.

Memory state is captured by **really pickling** the application's state
object; the pickle's byte length is what the simulated network moves,
so migration cost scales with genuine application state size.  The
byte stream is cut into chunks so that restoration can overlap resumed
execution (HPCM's data collection/restoration mechanism: "the
initialized process resumes execution in parallel with the data
collection and restoration", paper §5.2).
"""

from __future__ import annotations

import math
import pickle
from typing import Any, Iterable, List

from .errors import StateCaptureError


def capture(state: Any) -> bytes:
    """Serialize application state (the migration 'memory state')."""
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise StateCaptureError(
            f"application state is not picklable: {exc}"
        ) from exc


def restore(blob: bytes) -> Any:
    """Rebuild the state object from its serialized form."""
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise StateCaptureError(
            f"application state could not be restored: {exc}"
        ) from exc


def chunk(blob: bytes, n_chunks: int) -> List[bytes]:
    """Split ``blob`` into at most ``n_chunks`` contiguous pieces.

    Returns at least one chunk (possibly empty for an empty blob) so
    the transfer protocol always has a data phase.
    """
    if n_chunks < 1:
        raise ValueError("need at least one chunk")
    if not blob:
        return [b""]
    size = math.ceil(len(blob) / n_chunks)
    return [blob[i:i + size] for i in range(0, len(blob), size)]


def join(chunks: Iterable[bytes]) -> bytes:
    """Reassemble the chunk stream."""
    return b"".join(chunks)
