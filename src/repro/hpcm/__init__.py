"""HPCM-style heterogeneous process-migration middleware.

Applications keep all live state in one picklable object and advance in
steps (the gaps are poll-points); the runtime captures, streams and
restores that state to move a running process between hosts, re-pointing
its MPI rank and mailbox, with restoration overlapping resumed
execution.
"""

from .app import MigratableApp
from .checkpoint import (
    CheckpointError,
    CheckpointingApp,
    CheckpointMeta,
    read_checkpoint,
    write_checkpoint,
)
from .context import AppContext
from .errors import (
    HpcmError,
    MigrationFailed,
    RepartitionError,
    StateCaptureError,
)
from .record import (
    MigrationOrder,
    MigrationRecord,
    ReconfigRecord,
    ReconfigureOrder,
)
from .runtime import (
    DEFAULT_CHUNKS,
    DEFAULT_RESUME_FRACTION,
    DEFAULT_SERIALIZE_RATE,
    HpcmRuntime,
    launch,
    launch_world,
)
from .statexfer import capture, chunk, join, restore
from .world import HpcmWorld, launch_malleable_world

__all__ = [
    "AppContext",
    "CheckpointError",
    "CheckpointingApp",
    "CheckpointMeta",
    "read_checkpoint",
    "write_checkpoint",
    "DEFAULT_CHUNKS",
    "DEFAULT_RESUME_FRACTION",
    "DEFAULT_SERIALIZE_RATE",
    "HpcmError",
    "HpcmRuntime",
    "HpcmWorld",
    "MigratableApp",
    "MigrationFailed",
    "MigrationOrder",
    "MigrationRecord",
    "ReconfigRecord",
    "ReconfigureOrder",
    "RepartitionError",
    "StateCaptureError",
    "capture",
    "chunk",
    "join",
    "launch",
    "launch_malleable_world",
    "launch_world",
    "restore",
]
