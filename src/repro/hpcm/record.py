"""Migration phase timing records (the quantities of paper §5.2).

The paper decomposes a migration into: time to notice the overload
(warm-up, outside this record), decision time, initialization of the
destination process (LAM DPM spawn, ~0.3 s), time to reach the nearest
poll-point (~1.4 s), data restoration / resume (<1 s), and total
completion (~7.5 s).  Every migration produces one record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class MigrationOrder:
    """The command delivered to a migrating process (the 'user signal'
    plus the temp file carrying the destination address)."""

    dest_host: str
    issued_at: float
    reason: str = ""
    #: Decision latency measured by the registry/scheduler.
    decision_seconds: float = 0.0
    #: Optional path of a real temp file holding "host port" (paper
    #: fidelity: the commander writes it, the process reads it).
    address_file: Optional[str] = None


@dataclass
class ReconfigureOrder:
    """The command delivered to a malleable world: grow or shrink.

    ``kind`` is ``"expand"`` (spawn ranks on ``hosts``) or ``"shrink"``
    (retire the rank on the overloaded host; its state merges into a
    surviving peer)."""

    kind: str
    issued_at: float
    #: Expand: destination hosts for the new ranks.  Shrink: the single
    #: host whose rank retires.
    hosts: tuple = ()
    reason: str = ""
    decision_seconds: float = 0.0


@dataclass
class ReconfigRecord:
    """Timing and size breakdown of one N:M world reshape."""

    app: str
    kind: str
    old_size: int
    new_size: int
    reason: str = ""
    ordered_at: float = 0.0
    decision_seconds: float = 0.0
    #: When the last live rank parked at the reshape barrier.
    barrier_at: float = 0.0
    #: When the reshape finished and survivors resumed.
    completed_at: float = 0.0
    #: Repartitioned state moved between ranks (pickled size).
    moved_bytes: int = 0
    succeeded: bool = False
    failure: str = ""

    @property
    def barrier_seconds(self) -> float:
        return self.barrier_at - self.ordered_at

    @property
    def reshape_seconds(self) -> float:
        return self.completed_at - self.barrier_at

    @property
    def total_seconds(self) -> float:
        return self.completed_at - self.ordered_at

    def summary(self) -> dict:
        return {
            "app": self.app,
            "kind": self.kind,
            "old_size": self.old_size,
            "new_size": self.new_size,
            "reason": self.reason,
            "decision_s": self.decision_seconds,
            "barrier_s": self.barrier_seconds,
            "reshape_s": self.reshape_seconds,
            "total_s": self.total_seconds,
            "moved_bytes": self.moved_bytes,
            "succeeded": self.succeeded,
        }


@dataclass
class MigrationRecord:
    """Timing and size breakdown of one migration."""

    source: str
    dest: str
    reason: str = ""
    #: When the commander delivered the order.
    ordered_at: float = 0.0
    #: Registry decision latency (seconds).
    decision_seconds: float = 0.0
    #: When the process reached its poll-point and began migrating.
    pollpoint_at: float = 0.0
    #: When the initialized process was running on the destination.
    spawned_at: float = 0.0
    #: When execution resumed on the destination.
    resumed_at: float = 0.0
    #: When the last state byte arrived (migration complete).
    completed_at: float = 0.0
    memory_bytes: int = 0
    exec_bytes: int = 0
    succeeded: bool = False
    failure: str = ""

    # -- derived phase durations (seconds) -------------------------------
    @property
    def time_to_pollpoint(self) -> float:
        return self.pollpoint_at - self.ordered_at

    @property
    def init_seconds(self) -> float:
        return self.spawned_at - self.pollpoint_at

    @property
    def resume_seconds(self) -> float:
        return self.resumed_at - self.spawned_at

    @property
    def drain_seconds(self) -> float:
        """Residual state streamed after execution already resumed."""
        return self.completed_at - self.resumed_at

    @property
    def total_seconds(self) -> float:
        return self.completed_at - self.ordered_at

    def summary(self) -> dict:
        return {
            "source": self.source,
            "dest": self.dest,
            "reason": self.reason,
            "decision_s": self.decision_seconds,
            "to_pollpoint_s": self.time_to_pollpoint,
            "init_s": self.init_seconds,
            "resume_s": self.resume_seconds,
            "drain_s": self.drain_seconds,
            "total_s": self.total_seconds,
            "memory_bytes": self.memory_bytes,
            "succeeded": self.succeeded,
        }
