"""Migration phase timing records (the quantities of paper §5.2).

The paper decomposes a migration into: time to notice the overload
(warm-up, outside this record), decision time, initialization of the
destination process (LAM DPM spawn, ~0.3 s), time to reach the nearest
poll-point (~1.4 s), data restoration / resume (<1 s), and total
completion (~7.5 s).  Every migration produces one record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class MigrationOrder:
    """The command delivered to a migrating process (the 'user signal'
    plus the temp file carrying the destination address)."""

    dest_host: str
    issued_at: float
    reason: str = ""
    #: Decision latency measured by the registry/scheduler.
    decision_seconds: float = 0.0
    #: Optional path of a real temp file holding "host port" (paper
    #: fidelity: the commander writes it, the process reads it).
    address_file: Optional[str] = None


@dataclass
class MigrationRecord:
    """Timing and size breakdown of one migration."""

    source: str
    dest: str
    reason: str = ""
    #: When the commander delivered the order.
    ordered_at: float = 0.0
    #: Registry decision latency (seconds).
    decision_seconds: float = 0.0
    #: When the process reached its poll-point and began migrating.
    pollpoint_at: float = 0.0
    #: When the initialized process was running on the destination.
    spawned_at: float = 0.0
    #: When execution resumed on the destination.
    resumed_at: float = 0.0
    #: When the last state byte arrived (migration complete).
    completed_at: float = 0.0
    memory_bytes: int = 0
    exec_bytes: int = 0
    succeeded: bool = False
    failure: str = ""

    # -- derived phase durations (seconds) -------------------------------
    @property
    def time_to_pollpoint(self) -> float:
        return self.pollpoint_at - self.ordered_at

    @property
    def init_seconds(self) -> float:
        return self.spawned_at - self.pollpoint_at

    @property
    def resume_seconds(self) -> float:
        return self.resumed_at - self.spawned_at

    @property
    def drain_seconds(self) -> float:
        """Residual state streamed after execution already resumed."""
        return self.completed_at - self.resumed_at

    @property
    def total_seconds(self) -> float:
        return self.completed_at - self.ordered_at

    def summary(self) -> dict:
        return {
            "source": self.source,
            "dest": self.dest,
            "reason": self.reason,
            "decision_s": self.decision_seconds,
            "to_pollpoint_s": self.time_to_pollpoint,
            "init_s": self.init_seconds,
            "resume_s": self.resume_seconds,
            "drain_s": self.drain_seconds,
            "total_s": self.total_seconds,
            "memory_bytes": self.memory_bytes,
            "succeeded": self.succeeded,
        }
