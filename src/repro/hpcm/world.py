"""The malleable world: N:M reconfiguration at poll-point barriers.

A :class:`HpcmWorld` coordinates the ranks of one multi-rank
migratable application so the whole world can be *reshaped* — grown
onto fresh hosts (``Expand``) or shrunk off an overloaded one
(``Shrink``) — rather than only migrated 1:1.  The protocol reuses the
poll-point contract migration rests on:

1. the commander routes an :class:`~repro.protocol.messages.ExpandCommand`
   / ``ShrinkCommand`` to the world (:meth:`request_expand` /
   :meth:`request_shrink`);
2. every live rank *parks* at its next poll-point — a world-wide
   barrier, since between steps all state is collectible;
3. each rank pays the CPU cost of pickling its state (in parallel);
4. the application's :meth:`~repro.hpcm.app.MigratableApp.repartition`
   merges the per-rank states and re-splits them for the new size;
5. growth spawns fresh ranks with a *parallel tree* strategy — k
   simultaneous spawns cost ``spawn_latency * ceil(log2(k + 1))``
   rounds, not ``k`` sequential latencies (per "Parallel Spawning
   Strategies for Dynamic-Aware MPI Applications"); a shrink retires
   exactly one rank;
6. membership-changing state moves over the simulated network at its
   real pickled size, the world communicator gains/loses the rank, and
   survivors resume with their new state shares.

Any failure (unknown hosts, a :class:`RepartitionError`, a retiree
that already finished) aborts the reshape: every rank resumes
unchanged, and the failed attempt is still recorded.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from ..mpi.comm import Comm
from ..mpi.group import CommGroup
from ..mpi.process import MpiProcess
from ..mpi.runtime import MpiRuntime
from ..schema import ApplicationSchema
from ..trace import get_tracer
from ..trace.events import (
    EV_APP_EXPAND,
    EV_APP_SHRINK,
    EV_HPCM_REPARTITION,
)
from .errors import RepartitionError
from .record import ReconfigRecord, ReconfigureOrder
from .runtime import HpcmRuntime
from . import statexfer

__all__ = ["HpcmWorld", "launch_malleable_world"]


class HpcmWorld:
    """Reshape coordinator shared by the ranks of one application."""

    def __init__(
        self,
        mpi: MpiRuntime,
        app_factory: Callable[[int], Any],
        group: CommGroup,
        params: Optional[dict] = None,
        schema: Optional[ApplicationSchema] = None,
        rng: Any = None,
        runtime_kwargs: Optional[dict] = None,
        barrier_timeout: float = 60.0,
    ):
        self.mpi = mpi
        self.env = mpi.env
        self.app_factory = app_factory
        self.group = group
        self.params = dict(params or {})
        self.schema = schema
        self.rng = rng
        self.runtime_kwargs = dict(runtime_kwargs or {})
        #: A rank blocked inside a collective cannot park; after this
        #: many seconds an unassembled barrier aborts the reshape so
        #: the world never deadlocks on its own reconfiguration.
        self.barrier_timeout = float(barrier_timeout)
        #: Live runtimes in rank order (mirrors ``group.procs``).
        self.runtimes: List[HpcmRuntime] = []
        #: Every runtime that ever joined (finished and retired ones
        #: included), in join order — for experiments and tests.
        self.all_runtimes: List[HpcmRuntime] = []
        self.reconfigurations: List[ReconfigRecord] = []
        self._pending: Optional[ReconfigureOrder] = None
        self._retiree: Optional[HpcmRuntime] = None
        self._parked: Dict[int, Any] = {}  # runtime id → release event
        self._reshaping = False

    # -- public views ---------------------------------------------------
    @property
    def size(self) -> int:
        """Current world size (live ranks)."""
        return len(self.runtimes)

    @property
    def app_name(self) -> str:
        return self.runtimes[0].app.name if self.runtimes else "world"

    @property
    def reshape_pending(self) -> bool:
        return self._pending is not None

    @property
    def done(self):
        """Events of every current rank (for ``all_of`` style waits)."""
        return [rt.done for rt in self.runtimes]

    # -- the signal (commander → world) ---------------------------------
    def request_expand(self, order: ReconfigureOrder) -> tuple:
        """Grow the world onto ``order.hosts``; (delivered, detail)."""
        if self._pending is not None or self._reshaping:
            return False, "reshape already in progress"
        if not self.runtimes:
            return False, "world has no live ranks"
        if self.group.size != len(self.runtimes):
            return False, "world has finished ranks"
        if not order.hosts:
            return False, "expand order carries no destination hosts"
        self._pending = order
        self._watch(order)
        self._maybe_fire()
        return True, ""

    def request_shrink(
        self, runtime: HpcmRuntime, order: ReconfigureOrder
    ) -> tuple:
        """Retire ``runtime``'s rank; (delivered, detail)."""
        if self._pending is not None or self._reshaping:
            return False, "reshape already in progress"
        if runtime not in self.runtimes:
            return False, "rank is not a live member of this world"
        if self.group.size != len(self.runtimes):
            return False, "world has finished ranks"
        if len(self.runtimes) <= 1:
            return False, "world cannot shrink below one rank"
        self._pending = order
        self._retiree = runtime
        self._watch(order)
        self._maybe_fire()
        return True, ""

    # -- the poll-point barrier -----------------------------------------
    def park(self, runtime: HpcmRuntime):
        """Park one rank at the reshape barrier (a generator the rank
        drives with ``yield from``).  Returns the release directive:
        ``"resume"`` (state may have been replaced) or ``"retire"``."""
        event = self.env.event()
        self._parked[id(runtime)] = event
        self._maybe_fire()
        directive = yield event
        return directive

    def rank_done(self, runtime: HpcmRuntime) -> None:
        """A rank finished or failed on its own; drop it and re-check
        the barrier so a pending reshape cannot deadlock on it.

        The finished process deliberately STAYS in the communicator
        group: removing it would renumber the surviving ranks under
        messages already routed by rank index.  Only a shrink — at an
        assembled barrier, with no traffic in flight — edits
        membership.
        """
        if runtime in self.runtimes:
            self.runtimes.remove(runtime)
        self._parked.pop(id(runtime), None)
        self._maybe_fire()

    def _watch(self, order: ReconfigureOrder) -> None:
        """Arm the barrier-assembly watchdog for one order."""
        def _watchdog():
            yield self.env.timeout(self.barrier_timeout)
            if self._pending is order and not self._reshaping:
                self._pending = None
                self._retiree = None
                self._abort(
                    order,
                    "barrier timeout: a rank never reached its "
                    "poll-point",
                )

        self.env.process(_watchdog(), name=f"reshape-watch:{self.app_name}")

    def _abort(self, order: ReconfigureOrder, failure: str) -> None:
        """Record a reshape that never ran and wake the parked ranks."""
        size = len(self.runtimes)
        rec = ReconfigRecord(
            app=self.app_name,
            kind=order.kind,
            old_size=size,
            new_size=size,
            reason=order.reason,
            ordered_at=order.issued_at,
            decision_seconds=order.decision_seconds,
            barrier_at=self.env.now,
            completed_at=self.env.now,
            failure=failure,
        )
        self.reconfigurations.append(rec)
        tracer = get_tracer()
        if tracer.enabled and self.runtimes:
            tracer.begin(
                EV_HPCM_REPARTITION, t=order.issued_at,
                host=self.runtimes[0].host.name, app=rec.app,
                kind=order.kind, old_size=size,
            ).end(t=self.env.now, new_size=size, bytes=0,
                  succeeded=False, failure=failure)
        self._release(None)

    def _maybe_fire(self) -> None:
        if self._pending is None or self._reshaping:
            return
        if not self.runtimes:
            # Everyone finished before the barrier assembled.
            order, self._pending = self._pending, None
            self._retiree = None
            self._abort(order, "every rank finished before the barrier")
            return
        if self.group.size != len(self.runtimes):
            # Some rank finished mid-run: membership is frozen (see
            # rank_done), so the world can no longer be reshaped.
            order, self._pending = self._pending, None
            self._retiree = None
            self._abort(order, "world has finished ranks")
            return
        if all(id(rt) in self._parked for rt in self.runtimes):
            self._reshaping = True
            order, self._pending = self._pending, None
            self.env.process(
                self._reconfigure(order),
                name=f"hpcm-reshape:{self.app_name}",
            )

    # -- the reshape ----------------------------------------------------
    def _reconfigure(self, order: ReconfigureOrder):
        tracer = get_tracer()
        old_size = len(self.runtimes)
        rank0 = self.runtimes[0]
        rec = ReconfigRecord(
            app=self.app_name,
            kind=order.kind,
            old_size=old_size,
            new_size=old_size,
            reason=order.reason,
            ordered_at=order.issued_at,
            decision_seconds=order.decision_seconds,
            barrier_at=self.env.now,
        )
        span = tracer.begin(
            EV_HPCM_REPARTITION, t=order.issued_at,
            host=rank0.host.name, app=rec.app, kind=order.kind,
            old_size=old_size,
        ) if tracer.enabled else None
        retiree, self._retiree = self._retiree, None
        try:
            if order.kind == "expand":
                yield from self._do_expand(order, rec)
            else:
                yield from self._do_shrink(order, rec, retiree)
        except RepartitionError as exc:
            rec.failure = f"repartition refused: {exc}"
        rec.new_size = len(self.runtimes)
        rec.succeeded = not rec.failure
        rec.completed_at = self.env.now
        self.reconfigurations.append(rec)
        if span is not None:
            span.end(
                t=self.env.now, new_size=rec.new_size,
                bytes=rec.moved_bytes, succeeded=rec.succeeded,
                failure=rec.failure,
            )
        self._release(retiree if rec.succeeded and order.kind == "shrink"
                      else None)

    def _release(self, retiree: Optional[HpcmRuntime]) -> None:
        parked, self._parked = self._parked, {}
        self._reshaping = False
        for key, event in parked.items():
            directive = (
                "retire" if retiree is not None and key == id(retiree)
                else "resume"
            )
            if not event.triggered:
                event.succeed(directive)
        # A command may have raced in while we were reshaping.
        self._maybe_fire()

    def _capture_all(self, rec: ReconfigRecord) -> Any:
        """Pickle every rank's state, paying CPU in parallel; returns
        the per-rank blobs (rank order)."""
        blobs: List[bytes] = [b""] * len(self.runtimes)

        def _one(i, rt):
            blob = statexfer.capture(rt.state)
            blobs[i] = blob
            work = len(blob) / rt.serialize_rate
            if work > 0:
                yield rt.host.cpu.execute(work, label="hpcm-reshape-capture")

        waits = [
            self.env.process(_one(i, rt), name=f"reshape-capture:{i}")
            for i, rt in enumerate(self.runtimes)
        ]
        for wait in waits:
            yield wait
        return blobs

    def _repartition(self, new_size: int) -> List[Any]:
        states = [rt.state for rt in self.runtimes]
        new_states = self.runtimes[0].app.repartition(
            states, new_size, self.params, self.rng
        )
        if len(new_states) != new_size:
            raise RepartitionError(
                f"repartition returned {len(new_states)} states "
                f"for a world of {new_size}"
            )
        return new_states

    def _do_expand(self, order: ReconfigureOrder, rec: ReconfigRecord):
        hosts = []
        for name in order.hosts:
            try:
                host = self.mpi.cluster.host(name)
            except Exception:
                continue
            if getattr(host, "up", True):
                hosts.append(host)
        if not hosts:
            rec.failure = "no valid destination hosts"
            return
        old_size = len(self.runtimes)
        new_size = old_size + len(hosts)
        yield from self._capture_all(rec)
        new_states = self._repartition(new_size)

        # Parallel tree spawn: k fresh ranks in ceil(log2(k+1)) rounds.
        rounds = math.ceil(math.log2(len(hosts) + 1))
        spawn_cost = self.mpi.spawn_latency * rounds
        if spawn_cost > 0:
            yield self.env.timeout(spawn_cost)

        # Ship each fresh rank its state share (real pickled size).
        shares = [statexfer.capture(s) for s in new_states[old_size:]]
        src = self.runtimes[0].host

        def _ship(host, blob):
            if host is not src:
                yield self.mpi.network.transfer(
                    src.name, host.name, len(blob),
                    label=f"reshape:{rec.app}",
                )
            else:  # pragma: no cover - same-host expansion
                yield self.env.timeout(self.mpi.local_latency)

        waits = [
            self.env.process(_ship(h, b), name=f"reshape-ship:{h.name}")
            for h, b in zip(hosts, shares)
        ]
        for wait in waits:
            yield wait
        rec.moved_bytes = sum(len(b) for b in shares)

        # Survivors take their new shares; fresh ranks join the group.
        for rt, state in zip(self.runtimes, new_states):
            rt.state = state
        step = self.runtimes[0].step_count
        added = []
        for host, state in zip(hosts, new_states[old_size:]):
            rank = len(self.group.procs)
            proc = MpiProcess(self.mpi, host, name=f"{rec.app}[{rank}]")
            self.group.add(proc)
            runtime = HpcmRuntime(
                self.mpi,
                self.app_factory(rank),
                proc,
                params=self.params,
                schema=self.schema,
                comm=Comm(self.group, proc),
                rng=self.rng,
                world=self,
                initial_state=state,
                initial_step=step,
                **self.runtime_kwargs,
            )
            self.runtimes.append(runtime)
            self.all_runtimes.append(runtime)
            added.append(host.name)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EV_APP_EXPAND, t=self.env.now, host=src.name,
                app=rec.app, added=",".join(added),
                new_size=len(self.runtimes),
            )

    def _do_shrink(
        self,
        order: ReconfigureOrder,
        rec: ReconfigRecord,
        retiree: Optional[HpcmRuntime],
    ):
        if retiree is None or retiree not in self.runtimes:
            rec.failure = "retiring rank already finished"
            return
        if len(self.runtimes) <= 1:
            rec.failure = "world cannot shrink below one rank"
            return
        new_size = len(self.runtimes) - 1
        yield from self._capture_all(rec)
        retired_blob = statexfer.capture(retiree.state)

        # repartition sees states in *current* rank order; survivors
        # then take the new shares in post-shrink rank order.
        survivors = [rt for rt in self.runtimes if rt is not retiree]
        new_states = self._repartition(new_size)

        # The retired rank's share travels to the first survivor.
        peer = survivors[0]
        if peer.host is not retiree.host:
            yield self.mpi.network.transfer(
                retiree.host.name, peer.host.name, len(retired_blob),
                label=f"reshape:{rec.app}",
            )
        else:
            yield self.env.timeout(self.mpi.local_latency)
        rec.moved_bytes = len(retired_blob)

        retired_host = retiree.host.name
        self.runtimes.remove(retiree)
        self.group.remove(retiree.process)
        for rt, state in zip(self.runtimes, new_states):
            rt.state = state
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                EV_APP_SHRINK, t=self.env.now, host=peer.host.name,
                app=rec.app, removed=retired_host,
                new_size=len(self.runtimes),
            )


def launch_malleable_world(
    mpi: MpiRuntime,
    app_factory: Callable[[int], Any],
    hosts: list,
    params: Optional[dict] = None,
    schema: Optional[ApplicationSchema] = None,
    rng: Any = None,
    barrier_timeout: float = 60.0,
    **kwargs: Any,
) -> HpcmWorld:
    """Start a multi-rank application whose world can be reshaped.

    Like :func:`~repro.hpcm.runtime.launch_world`, but wires every rank
    to a shared :class:`HpcmWorld` and defaults the schema to the
    application's :meth:`~repro.hpcm.app.MigratableApp.malleable_schema`
    so the registry knows the reshape envelope.  Returns the world; the
    runtimes are ``world.runtimes``.
    """
    if not hosts:
        raise ValueError("need at least one host")
    app0 = app_factory(0)
    if schema is None:
        schema = app0.malleable_schema()
    name = app0.name
    procs = [
        MpiProcess(mpi, host, name=f"{name}[{i}]")
        for i, host in enumerate(hosts)
    ]
    group = CommGroup(mpi, procs, label=f"{name}.world")
    world = HpcmWorld(
        mpi, app_factory, group,
        params=params, schema=schema, rng=rng, runtime_kwargs=kwargs,
        barrier_timeout=barrier_timeout,
    )
    for rank, proc in enumerate(procs):
        runtime = HpcmRuntime(
            mpi,
            app_factory(rank),
            proc,
            params=params,
            schema=schema,
            comm=Comm(group, proc),
            rng=rng,
            world=world,
            **kwargs,
        )
        world.runtimes.append(runtime)
        world.all_runtimes.append(runtime)
    return world
