"""Checkpoint/restart on top of the poll-point contract.

Paper §1: "Though the system is implemented on top of the MPI and HPCM
middleware, it is general and can be extended for checkpointing-based
or mobile computing systems."  The same state-capture contract that
powers migration powers disk checkpoints: at any poll-point the
complete application state pickles to a file; a later run restarts
from it — surviving a crash of the whole process (or simulator).

Checkpoint files are self-describing: a JSON header (app name, step
count, schema XML, integrity digest) followed by the state pickle.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass
from typing import Any, Optional

from ..schema import ApplicationSchema
from . import statexfer
from .app import MigratableApp
from .errors import HpcmError

_MAGIC = b"HPCMCKPT"
_VERSION = 1


class CheckpointError(HpcmError):
    """Unreadable, corrupt or mismatched checkpoint file."""


@dataclass(frozen=True)
class CheckpointMeta:
    """Header of a checkpoint file."""

    app_name: str
    step_count: int
    sim_time: float
    schema_xml: str
    digest: str

    def as_dict(self) -> dict:
        return {
            "app_name": self.app_name,
            "step_count": self.step_count,
            "sim_time": self.sim_time,
            "schema_xml": self.schema_xml,
            "digest": self.digest,
        }


def write_checkpoint(
    path: str,
    app_name: str,
    state: Any,
    step_count: int,
    sim_time: float,
    schema: Optional[ApplicationSchema] = None,
) -> CheckpointMeta:
    """Capture ``state`` to ``path`` atomically; returns the header."""
    blob = statexfer.capture(state)
    meta = CheckpointMeta(
        app_name=app_name,
        step_count=int(step_count),
        sim_time=float(sim_time),
        schema_xml=schema.to_xml() if schema is not None else "",
        digest=hashlib.sha256(blob).hexdigest(),
    )
    header = json.dumps(meta.as_dict()).encode("utf-8")
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack(">II", _VERSION, len(header)))
        fh.write(header)
        fh.write(blob)
    os.replace(tmp, path)  # atomic: a crash never leaves a torn file
    return meta


def read_checkpoint(path: str) -> tuple:
    """Load ``(meta, state)`` from a checkpoint file.

    Verifies magic, version and the state digest; raises
    :class:`CheckpointError` on any mismatch.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read {path!r}: {exc}") from exc
    if not data.startswith(_MAGIC):
        raise CheckpointError(f"{path!r} is not a checkpoint file")
    offset = len(_MAGIC)
    version, header_len = struct.unpack_from(">II", data, offset)
    if version != _VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    offset += 8
    try:
        header = json.loads(data[offset:offset + header_len])
    except ValueError as exc:
        raise CheckpointError("corrupt checkpoint header") from exc
    blob = data[offset + header_len:]
    meta = CheckpointMeta(**header)
    if hashlib.sha256(blob).hexdigest() != meta.digest:
        raise CheckpointError(f"{path!r}: state digest mismatch")
    return meta, statexfer.restore(blob)


class CheckpointingApp(MigratableApp):
    """Wrap any migratable app with periodic disk checkpoints.

    Every ``every`` steps (poll-points) the wrapped application's state
    is written to ``path``.  :meth:`resume_params` rebuilds the launch
    parameters of a fresh run from the latest checkpoint.
    """

    def __init__(self, inner: MigratableApp, path: str, every: int = 1):
        if every < 1:
            raise ValueError("checkpoint period must be >= 1 step")
        self.inner = inner
        self.path = path
        self.every = int(every)
        self.name = f"{inner.name}+ckpt"
        self._steps_since = 0
        self.checkpoints_written = 0

    def create_state(self, params: dict, rng: Any) -> Any:
        if params.get("_resume_from"):
            meta, state = read_checkpoint(params["_resume_from"])
            expected = f"{self.inner.name}+ckpt"
            if meta.app_name not in (self.inner.name, expected, self.name):
                raise CheckpointError(
                    f"checkpoint belongs to {meta.app_name!r}, "
                    f"not {self.inner.name!r}"
                )
            return state
        return self.inner.create_state(params, rng)

    def run_step(self, state: Any, ctx: Any):
        more = yield from self.inner.run_step(state, ctx)
        self._steps_since += 1
        if self._steps_since >= self.every or not more:
            write_checkpoint(
                self.path,
                self.name,
                state,
                step_count=self._steps_since,
                sim_time=ctx.now,
            )
            self.checkpoints_written += 1
            self._steps_since = 0
        return more

    def finalize(self, state: Any) -> Any:
        return self.inner.finalize(state)

    def default_schema(self) -> ApplicationSchema:
        return self.inner.default_schema()

    @staticmethod
    def resume_params(path: str, base_params: Optional[dict] = None) -> dict:
        """Launch parameters resuming from the checkpoint at ``path``."""
        params = dict(base_params or {})
        params["_resume_from"] = path
        return params
