"""Command-line interface: experiments, tracing, configuration linting.

::

    python -m repro list
    python -m repro run fig5 [--seed N] [--out DIR]
    python -m repro run fig7 --trace out.jsonl
    python -m repro run all --out results/
    python -m repro trace fig7 [--out trace.json] [--format chrome]
    python -m repro sweep fig5 fig7 --replicas 3 --jobs 4 \
        --cache-dir .sweep-cache --out sweep.json
    python -m repro lint examples/ [--format json] [--strict]
    python -m repro live [--nodes N] [--timeout S] [--hierarchy]

``repro run`` regenerates a §5 experiment, prints a paper-vs-measured
table (and ASCII plots for the figures), and — with ``--out`` —
exports the raw series as CSV; ``--trace PATH`` additionally records
the structured migration-lifecycle trace (see ``docs/tracing.md``).
``repro trace`` runs an experiment purely for its trace and prints the
per-phase span breakdown.  ``repro sweep`` fans independent replicas
across a process pool with deterministic per-replica seeds and a
content-hash result cache (see ``docs/performance.md``).  ``repro
lint`` statically checks rule files, policy files and application
schemas (see ``docs/linting.md``).  ``repro live`` runs the whole
pipeline over real localhost sockets — registry, nodes, an overload,
one genuine migration — and prints the decision log (see
``docs/live.md``).

The pre-subcommand spelling ``repro fig5`` still works through a
back-compat shim.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from .metrics import ascii_plot, format_table


def _fig5(args) -> int:
    from .analysis import run_overhead_experiment
    from .analysis.export import export_overhead

    r = run_overhead_experiment(duration=args.duration, seed=args.seed)
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ("1-min load, without", 0.256, round(r.load1_without, 3)),
            ("1-min load, with", 0.266, round(r.load1_with, 3)),
            ("load overhead %", 3.9, round(100 * r.load1_overhead, 2)),
            ("CPU util overhead %", 3.46, round(100 * r.cpu_overhead, 2)),
        ],
        title="Figure 5 — rescheduler overhead (load average)",
    ))
    print(ascii_plot(
        [r.without_rs.load1, r.with_rs.load1],
        title="1-minute load average",
        labels=["without", "with"],
    ))
    if args.out:
        paths = export_overhead(r, args.out)
        print(f"\nCSV written: {', '.join(sorted(paths.values()))}")
    return 0


def _fig6(args) -> int:
    from .analysis import run_overhead_experiment
    from .analysis.export import export_overhead

    r = run_overhead_experiment(duration=args.duration, seed=args.seed)
    print(format_table(
        ["quantity", "paper", "measured"],
        [
            ("send KB/s, without", 5.82, round(r.send_kbs_without, 2)),
            ("send KB/s, with", 5.82, round(r.send_kbs_with, 2)),
            ("recv KB/s, without", 5.99, round(r.recv_kbs_without, 2)),
            ("recv KB/s, with", 5.99, round(r.recv_kbs_with, 2)),
            ("comm overhead %", 0.0, round(100 * r.comm_overhead, 2)),
        ],
        title="Figure 6 — rescheduler overhead (communication)",
    ))
    if args.out:
        export_overhead(r, args.out)
        print(f"\nCSV written under {args.out}")
    return 0


def _fig7(args) -> int:
    from .analysis import run_efficiency_experiment
    from .analysis.export import export_efficiency

    r = run_efficiency_experiment(seed=args.seed)
    phases = r.phase_summary()
    print(format_table(
        ["phase", "paper", "measured"],
        [
            ("warm-up s", 72.0, round(phases["warmup_s"], 1)),
            ("decision s", 0.002, round(phases["decision_s"], 4)),
            ("init (spawn) s", 0.3, round(phases["init_s"], 3)),
            ("to poll-point s", 1.4, round(phases["to_pollpoint_s"], 2)),
            ("resume s", 1.0, round(phases["resume_s"], 2)),
            ("total s", 7.5, round(phases["total_s"], 2)),
        ],
        title="Figure 7 — migration phases",
    ))
    print(ascii_plot(
        [r.cpu_source, r.cpu_dest],
        title="CPU utilization around the migration",
        labels=["source", "destination"],
    ))
    if args.out:
        paths = export_efficiency(r, args.out)
        print(f"\nCSV written: {', '.join(sorted(paths.values()))}")
    return 0


def _fig8(args) -> int:
    from .analysis import run_efficiency_experiment
    from .analysis.export import export_efficiency

    r = run_efficiency_experiment(seed=args.seed)
    print(ascii_plot(
        [r.send_source, r.recv_dest],
        title="Figure 8 — network KB/s (state-transfer burst)",
        labels=["source send", "destination recv"],
    ))
    rec = r.record
    print(f"\nresume happened {rec.drain_seconds:.2f}s before the "
          f"transfer completed ({rec.memory_bytes / 2**20:.1f} MB moved)")
    if args.out:
        export_efficiency(r, args.out)
        print(f"CSV written under {args.out}")
    return 0


def _table1(args) -> int:
    from .analysis import run_table1

    rows = run_table1(seed=args.seed)

    def cell(flag):
        return "yes" if flag else "no"

    print(format_table(
        ["state", "loaded", "migrate in", "migrate out"],
        [
            (name, cell(row.loaded), cell(row.migrate_in),
             cell(row.migrate_out))
            for name, row in rows.items() if not name.startswith("_")
        ],
        title="Table 1 — system state behaviour (observed)",
    ))
    return 0


def _table2(args) -> int:
    from .analysis import run_table2
    from .analysis.export import export_table2

    results = run_table2(seed=args.seed)
    print(format_table(
        ["policy", "total s", "to", "source s", "dest s", "migration s"],
        [results[i].row() for i in (1, 2, 3)],
        title="Table 2 — policy comparison "
              "(paper: 983.6 / 433.27→ws2 / 329.71→ws4)",
    ))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = export_table2(results,
                             os.path.join(args.out, "table2.csv"))
        print(f"\nCSV written: {path}")
    return 0


def _all(args) -> int:
    rc = 0
    for name in ("fig5", "fig6", "fig7", "fig8", "table1", "table2"):
        print(f"\n=== {name} ===")
        rc |= COMMANDS[name](args)
    return rc


def _list(args) -> int:
    print("available experiments:")
    for name in sorted(COMMANDS):
        if name != "all":
            print(f"  {name}")
    print("  all    — run everything")
    return 0


#: Experiment name → handler (the ``repro run`` subcommand).
COMMANDS = {
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "table1": _table1,
    "table2": _table2,
    "all": _all,
}


def _export_trace(tracer, path: str, fmt: Optional[str] = None) -> None:
    """Write a collected trace; format from ``fmt`` or the extension
    (``.json`` → Chrome/Perfetto, anything else → JSONL)."""
    from .trace.exporters import export_chrome, export_jsonl

    if fmt is None:
        fmt = "chrome" if path.endswith(".json") else "jsonl"
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if fmt == "chrome":
        n = export_chrome(tracer.records, path)
    else:
        n = export_jsonl(tracer.records, path)
    print(f"trace written: {path} ({n} records, {fmt} format)")


def _run(args) -> int:
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return COMMANDS[args.experiment](args)
    from .trace import Tracer, use

    tracer = Tracer()
    with use(tracer):
        rc = COMMANDS[args.experiment](args)
    _export_trace(tracer, trace_path)
    return rc


def _trace(args) -> int:
    from .metrics.tracestats import format_phase_table
    from .trace import Tracer, use

    # The experiment handlers read seed/duration/out; out here names
    # the trace file, so the handler sees no CSV directory.
    handler_args = argparse.Namespace(
        experiment=args.experiment, seed=args.seed,
        duration=args.duration, out=None,
    )
    tracer = Tracer()
    with use(tracer):
        rc = COMMANDS[args.experiment](handler_args)
    _export_trace(tracer, args.out, fmt=args.format)
    print()
    print(format_phase_table(tracer.records))
    return rc


def _parse_overrides(items) -> dict:
    """``--set key=value`` pairs; values parse as JSON when they can
    (``--set duration=600``) and stay strings otherwise."""
    import json

    config = {}
    for item in items or []:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise SystemExit(f"repro sweep: --set expects key=value, "
                             f"got {item!r}")
        try:
            config[key] = json.loads(raw)
        except json.JSONDecodeError:
            config[key] = raw
    return config


def _sweep(args) -> int:
    import json

    from .perf import CELLS, ResultCache, plan_sweep, run_sweep

    if args.list_axes:
        from .perf.experiments import CELL_AXES

        print(format_table(
            ["experiment", "axes (--set keys)"],
            [(name, ", ".join(sorted(CELL_AXES[name])))
             for name in sorted(CELL_AXES)],
            title="sweep axes",
        ))
        return 0
    experiments = args.experiments
    if not experiments:
        raise SystemExit(
            "repro sweep: name at least one experiment "
            "(or use --list-axes)"
        )
    unknown = [e for e in experiments if e != "all" and e not in CELLS]
    if unknown:
        raise SystemExit(
            f"repro sweep: unknown experiment(s) "
            f"{', '.join(sorted(unknown))}; "
            f"choose from {', '.join(sorted(CELLS))}, all"
        )
    if "all" in experiments:
        experiments = sorted(CELLS)
    cells = plan_sweep(experiments, replicas=args.replicas,
                       base_seed=args.seed,
                       config=_parse_overrides(args.set))
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    if args.dry_run:
        rows = [
            (cell.experiment, cell.replica, cell.seed,
             "cached" if cache is not None and cache.contains(cell.key)
             else "would run")
            for cell in cells
        ]
        print(format_table(["experiment", "replica", "seed", "status"],
                           rows, title=f"sweep plan — {len(cells)} cells"))
        return 0

    outcome = run_sweep(cells, jobs=args.jobs, cache=cache, log=print)
    rows = [
        (cell.experiment, cell.replica, cell.seed,
         "cache" if hit else "ran")
        for cell, hit in zip(outcome.cells, outcome.cached)
    ]
    print(format_table(
        ["experiment", "replica", "seed", "source"], rows,
        title=f"sweep — {outcome.executed} ran, "
              f"{outcome.cache_hits} from cache",
    ))
    payload = outcome.as_payload()
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary JSON written: {args.out}")
    if args.csv:
        from .analysis.export import export_sweep

        parent = os.path.dirname(args.csv)
        if parent:
            os.makedirs(parent, exist_ok=True)
        print(f"summary CSV written: {export_sweep(payload, args.csv)}")
    return 0


def _live(args) -> int:
    """The live-mode demo: a real registry, N real nodes on localhost
    sockets, one overload, one autonomic migration."""
    import time

    from .core import MetricPredicate, MigrationPolicy
    from .live import (
        LiveNode,
        LiveRegistry,
        sqrt_sum_expected,
        sqrt_sum_state,
    )

    policy = MigrationPolicy(
        name="live-demo",
        dest_conditions=(MetricPredicate("loadavg1", "<", 1.0),),
    )
    lease = max(5.0, 10.0 * args.interval)
    top = None
    if args.hierarchy:
        top = LiveRegistry(policy=policy, lease=lease,
                           command_cooldown=0.5, name="top")
    registry = LiveRegistry(
        policy=policy, lease=lease, command_cooldown=0.5,
        parent_address=top.address if top else None,
    )
    nodes = [
        LiveNode(f"node{i}", registry_address=registry.address,
                 interval=args.interval,
                 capacity_threshold=args.threshold)
        for i in range(args.nodes)
    ]
    extra = []
    if top is not None:
        # One host under the top-level registry: the escalation target
        # when every local node is busy.
        extra = [LiveNode("remote0", registry_address=top.address,
                          interval=args.interval,
                          capacity_threshold=args.threshold)]
    try:
        print(f"registry listening on {registry.address}"
              + (f" (parent {top.address})" if top else ""))
        for node in nodes + extra:
            print(f"  {node.name} on {node.address}")
        source = nodes[0]
        task = source.submit(
            "sqrt_sum", sqrt_sum_state(n=args.n, chunk=args.n // 40),
            est_seconds=120.0,
        )
        source.inject_load(3.0)
        if top is not None:
            # Saturate the local peers so the decision must escalate.
            for node in nodes[1:]:
                node.inject_load(3.0)
        print(f"task {task.task_id} started on {source.name}; "
              f"source load injected — waiting for the migration ...")
        finished = None
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline and finished is None:
            time.sleep(0.1)
            for node in nodes + extra:
                if node.completed:
                    finished = node
                    break
        print()
        print(format_table(
            ["source", "dest", "pid", "escalated"],
            [(d.source, d.dest or "-", d.pid, "yes" if d.escalated
              else "no") for d in registry.decisions]
            + ([(d.source, d.dest or "-", d.pid, "yes" if d.escalated
                 else "no") for d in top.decisions] if top else []),
            title="decision log",
        ))
        if finished is None:
            print("\nno migration completed within "
                  f"{args.timeout:.0f}s — try a larger --timeout")
            return 1
        done = finished.completed[0]
        ok = abs(done.result["acc"] - sqrt_sum_expected(args.n)) < 1e-6
        migrated = finished is not source
        print(f"\ntask finished on {finished.name} after "
              f"{done.hops} hop(s); result "
              f"{'correct' if ok else 'WRONG'}")
        return 0 if (ok and migrated) else 1
    finally:
        for node in nodes + extra:
            node.stop()
        registry.stop()
        if top is not None:
            top.stop()


def _lint(args) -> int:
    from .lint import (
        LintUsageError, exit_code, lint_paths, render_json,
        render_sarif, render_text,
    )

    def _codes(raw):
        if raw is None:
            return None
        return [c for c in (p.strip() for p in raw.split(",")) if c]

    try:
        diags = lint_paths(args.paths, select=_codes(args.select),
                           ignore=_codes(args.ignore), jobs=args.jobs)
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    render = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(args.format, render_text)
    print(render(diags))
    return exit_code(diags, strict=args.strict)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'A Runtime System for "
                    "Autonomic Rescheduling of MPI Programs' "
                    "(ICPP 2004): experiments and config linting.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="regenerate one of the paper's experiments"
    )
    run.add_argument("experiment", choices=sorted(COMMANDS),
                     help="which experiment to run")
    run.add_argument("--seed", type=int, default=0,
                     help="random seed (default 0)")
    run.add_argument("--duration", type=float, default=3600.0,
                     help="overhead-experiment horizon in simulated "
                          "seconds (default 3600)")
    run.add_argument("--out", default=None,
                     help="directory for CSV export (created if missing)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="also record a structured trace to PATH "
                          "(.json → Chrome/Perfetto, else JSONL)")
    run.set_defaults(func=_run)

    trace = sub.add_parser(
        "trace",
        help="run an experiment with tracing on and export the trace",
    )
    trace.add_argument("experiment", choices=sorted(COMMANDS),
                       help="which experiment to trace")
    trace.add_argument("--seed", type=int, default=0,
                       help="random seed (default 0)")
    trace.add_argument("--duration", type=float, default=3600.0,
                       help="overhead-experiment horizon in simulated "
                            "seconds (default 3600)")
    trace.add_argument("--out", default="trace.jsonl", metavar="PATH",
                       help="trace output path (default trace.jsonl)")
    trace.add_argument("--format", choices=("jsonl", "chrome"),
                       default=None,
                       help="trace format (default: from extension)")
    trace.set_defaults(func=_trace)

    sweep = sub.add_parser(
        "sweep",
        help="fan experiment replicas across a process pool, with "
             "deterministic seeding and result caching",
    )
    from .perf.experiments import CELLS as _sweep_cells

    sweep.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                       help="experiments to sweep: "
                            f"{', '.join(sorted(_sweep_cells))}, "
                            "or 'all' for every one")
    sweep.add_argument("--list-axes", action="store_true",
                       help="print each cell's valid --set axes and exit")
    sweep.add_argument("--replicas", type=int, default=1,
                       help="replicas per experiment (default 1)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed; per-cell seeds are derived by "
                            "content hash (default 0)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="JSON result cache; warm re-runs skip "
                            "completed cells")
    sweep.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="config override passed to every cell "
                            "(repeatable; values parsed as JSON)")
    sweep.add_argument("--out", default=None, metavar="PATH",
                       help="write the full summary JSON here")
    sweep.add_argument("--csv", default=None, metavar="PATH",
                       help="also flatten scalar metrics to CSV")
    sweep.add_argument("--dry-run", action="store_true",
                       help="print the plan (and cache status) "
                            "without running anything")
    sweep.set_defaults(func=_sweep)

    lint = sub.add_parser(
        "lint",
        help="statically check rule files, policies, app schemas "
             "and the Python source contracts",
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format (default text)")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as errors")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="parse Python sources across N processes "
                           "(same findings, same order; default 1)")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="report only codes matching these "
                           "comma-separated prefixes (e.g. D3,T505)")
    lint.add_argument("--ignore", default=None, metavar="CODES",
                      help="drop codes matching these comma-separated "
                           "prefixes")
    lint.set_defaults(func=_lint)

    live = sub.add_parser(
        "live",
        help="run the rescheduler over real localhost sockets and "
             "watch one autonomic migration",
    )
    live.add_argument("--nodes", type=int, default=2,
                      help="number of localhost nodes (default 2)")
    live.add_argument("--interval", type=float, default=0.2,
                      help="monitoring interval in seconds (default 0.2)")
    live.add_argument("--threshold", type=float, default=1.5,
                      help="overload threshold on the demo load "
                           "(default 1.5)")
    live.add_argument("--n", type=int, default=20_000_000,
                      help="task size: sum of square roots up to N "
                           "(default 2e7)")
    live.add_argument("--timeout", type=float, default=60.0,
                      help="give up after this many seconds (default 60)")
    live.add_argument("--hierarchy", action="store_true",
                      help="add a parent registry plus a remote node and "
                           "force the decision to escalate")
    live.set_defaults(func=_live)

    lister = sub.add_parser("list", help="list available experiments")
    lister.set_defaults(func=_list)
    return parser


def _shim(argv: list) -> list:
    """Back-compat: ``repro fig5 --seed 1`` → ``repro run fig5 --seed 1``."""
    if argv and argv[0] in COMMANDS:
        return ["run"] + argv
    return argv


def main(argv: Optional[list] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    args = build_parser().parse_args(_shim(argv))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
