"""Schema store: execution-history feedback across runs.

The paper's future work: the system should "take feedbacks from the
scheduling and performance history, and automatically improve its
accuracy and efficiency".  The mechanism is already in the schema
("updated according to the statistics of actual executions"); the
store is the persistence layer — each completed run's statistics fold
into the schema the *next* launch of the same application receives, so
estimated completion times (which drive victim selection) converge on
reality.
"""

from __future__ import annotations

from typing import Dict, Optional

from .appschema import ApplicationSchema


class SchemaStore:
    """Keeps the freshest schema per application name."""

    def __init__(self):
        self._schemas: Dict[str, ApplicationSchema] = {}

    def get(self, name: str) -> Optional[ApplicationSchema]:
        """The stored schema for ``name`` (None if never seen)."""
        return self._schemas.get(name)

    def seed(self, schema: ApplicationSchema) -> None:
        """Install a user-provided initial schema (paper: "initially
        provided by the users")."""
        self._schemas[schema.name] = schema

    def record_run(self, schema: ApplicationSchema) -> None:
        """Store the post-run schema (call with ``runtime.schema`` after
        completion — it already folded the run's statistics in)."""
        existing = self._schemas.get(schema.name)
        if existing is None or schema.run_count >= existing.run_count:
            self._schemas[schema.name] = schema

    def estimate_error(self, name: str, actual_seconds: float,
                       cpu_speed: float = 1.0) -> Optional[float]:
        """Relative error of the current estimate vs an actual run."""
        schema = self._schemas.get(name)
        if schema is None or schema.est_exec_time <= 0:
            return None
        predicted = schema.estimated_time_on(cpu_speed)
        return abs(predicted - actual_seconds) / actual_seconds

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)
