"""Application schema: XML description of a migratable application.

The paper encapsulates "detailed application information, parameters,
and resource requirements ... in an *application schema* in a XML
format" carrying: application characteristics (data / communication /
computing intensive), estimated communication data size, resource
requirements, and estimated execution time on a workstation with
certain computing power.  The schema travels to the destination machine
to initialize the process, and is updated from actual execution
statistics (the paper's self-adjustment hook).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional


class Characteristics(str, Enum):
    """What dominates the application's resource usage."""

    COMPUTE = "compute-intensive"
    DATA = "data-intensive"
    COMMUNICATION = "communication-intensive"


@dataclass(frozen=True)
class ResourceRequirements:
    """Minimum resources a destination must offer."""

    min_memory_bytes: int = 0
    min_disk_bytes: int = 0
    min_cpu_speed: float = 0.0
    features: tuple = ()  # e.g. ("fpu", "large-pages")

    def to_element(self) -> ET.Element:
        elem = ET.Element("requirements")
        ET.SubElement(elem, "memory").text = str(self.min_memory_bytes)
        ET.SubElement(elem, "disk").text = str(self.min_disk_bytes)
        ET.SubElement(elem, "cpuSpeed").text = repr(self.min_cpu_speed)
        feats = ET.SubElement(elem, "features")
        for feat in self.features:
            ET.SubElement(feats, "feature").text = feat
        return elem

    @classmethod
    def from_element(cls, elem: ET.Element) -> "ResourceRequirements":
        feats = tuple(
            f.text for f in elem.find("features") or [] if f.text
        )
        return cls(
            min_memory_bytes=int(elem.findtext("memory", "0")),
            min_disk_bytes=int(elem.findtext("disk", "0")),
            min_cpu_speed=float(elem.findtext("cpuSpeed", "0")),
            features=feats,
        )


#: Exponential-smoothing factor for execution-statistics feedback.
_SMOOTHING = 0.5


@dataclass(frozen=True)
class ApplicationSchema:
    """One application's schema (immutable; updates return new schemas)."""

    name: str
    characteristics: Characteristics = Characteristics.COMPUTE
    #: Estimated state size moved during a migration (bytes).
    est_comm_bytes: int = 0
    #: Estimated total execution time (seconds) on a reference
    #: workstation of ``reference_speed``.
    est_exec_time: float = 0.0
    reference_speed: float = 1.0
    requirements: ResourceRequirements = field(
        default_factory=ResourceRequirements
    )
    #: Data-locality weight in [0, 1]: 1 means heavily local-I/O-bound
    #: ("if a process involves a lot in a local data access, the process
    #: is not to be migrated", §5.3).
    data_locality: float = 0.0
    #: Number of completed runs folded into the estimates.
    run_count: int = 0
    #: Declared number of poll-points per run (HPCM can only capture
    #: state at poll-points); ``None`` means the schema does not say.
    poll_points: Optional[int] = None
    #: Malleability declaration (docs/malleability.md): the world-size
    #: range this application can repartition across.  The defaults
    #: (1, 1) declare a rigid application — the 2004 paper's shape —
    #: and keep the schema XML byte-identical to its historical form.
    min_world: int = 1
    max_world: int = 1
    #: Declared parallel efficiency at world sizes 1..len(curve); the
    #: last point extends rightward, an empty curve reads as perfectly
    #: scalable.  Values outside (0, 1] and non-monotone curves are
    #: *lint* findings (S204/S205), not construction errors.
    efficiency_curve: tuple = ()

    def __post_init__(self):
        if self.est_comm_bytes < 0 or self.est_exec_time < 0:
            raise ValueError("estimates must be non-negative")
        if self.reference_speed <= 0:
            raise ValueError("reference speed must be positive")
        if not 0 <= self.data_locality <= 1:
            raise ValueError("data_locality must lie in [0, 1]")
        if self.poll_points is not None and self.poll_points < 0:
            raise ValueError("poll_points must be non-negative")
        if self.min_world < 1:
            raise ValueError("min_world must be at least 1")
        object.__setattr__(
            self, "efficiency_curve",
            tuple(float(v) for v in self.efficiency_curve),
        )

    # -- malleability ----------------------------------------------------
    @property
    def malleable(self) -> bool:
        """Can this application's world be reshaped at all?"""
        return self.max_world > self.min_world or self.min_world > 1

    def efficiency_at(self, n: int) -> float:
        """Declared parallel efficiency at world size ``n`` (the last
        curve point extends rightward; undeclared curves read 1.0)."""
        if not self.efficiency_curve or n <= 0:
            return 1.0
        return self.efficiency_curve[min(n, len(self.efficiency_curve)) - 1]

    # -- estimates ------------------------------------------------------
    def estimated_time_on(self, cpu_speed: float) -> float:
        """Scale the reference execution time to a host's speed."""
        if cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        return self.est_exec_time * self.reference_speed / cpu_speed

    def estimated_completion(
        self, start_time: float, cpu_speed: float
    ) -> float:
        """Absolute estimated completion time for a started process."""
        return start_time + self.estimated_time_on(cpu_speed)

    # -- feedback ---------------------------------------------------------
    def updated_from_run(
        self,
        actual_exec_time: float,
        cpu_speed: float,
        actual_comm_bytes: Optional[int] = None,
    ) -> "ApplicationSchema":
        """Fold a completed run's statistics into the estimates.

        The paper: the schema "is updated according to the statistics of
        actual executions".  Exponential smoothing keeps old knowledge
        while adapting.
        """
        if actual_exec_time < 0:
            raise ValueError("actual execution time must be non-negative")
        normalized = actual_exec_time * cpu_speed / self.reference_speed
        if self.run_count == 0:
            new_time = normalized
        else:
            new_time = (
                _SMOOTHING * normalized + (1 - _SMOOTHING) * self.est_exec_time
            )
        new_comm = self.est_comm_bytes
        if actual_comm_bytes is not None:
            if self.run_count == 0:
                new_comm = actual_comm_bytes
            else:
                new_comm = int(
                    _SMOOTHING * actual_comm_bytes
                    + (1 - _SMOOTHING) * self.est_comm_bytes
                )
        return replace(
            self,
            est_exec_time=new_time,
            est_comm_bytes=new_comm,
            run_count=self.run_count + 1,
        )

    # -- XML ------------------------------------------------------------
    def to_xml(self) -> str:
        """Serialize to the wire format (ASCII XML, per paper §3.3)."""
        root = ET.Element("applicationSchema")
        ET.SubElement(root, "name").text = self.name
        ET.SubElement(root, "characteristics").text = (
            self.characteristics.value
        )
        ET.SubElement(root, "estCommBytes").text = str(self.est_comm_bytes)
        ET.SubElement(root, "estExecTime").text = repr(self.est_exec_time)
        ET.SubElement(root, "referenceSpeed").text = repr(
            self.reference_speed
        )
        ET.SubElement(root, "dataLocality").text = repr(self.data_locality)
        ET.SubElement(root, "runCount").text = str(self.run_count)
        if self.poll_points is not None:
            ET.SubElement(root, "pollPoints").text = str(self.poll_points)
        # Malleability elements ride only when declared: rigid schemas
        # keep the paper's exact XML bytes.
        if self.min_world != 1:
            ET.SubElement(root, "minWorld").text = str(self.min_world)
        if self.max_world != 1:
            ET.SubElement(root, "maxWorld").text = str(self.max_world)
        if self.efficiency_curve:
            ET.SubElement(root, "efficiencyCurve").text = ",".join(
                repr(v) for v in self.efficiency_curve
            )
        root.append(self.requirements.to_element())
        return ET.tostring(root, encoding="unicode")

    @classmethod
    def from_xml(cls, text: str) -> "ApplicationSchema":
        root = ET.fromstring(text)
        if root.tag != "applicationSchema":
            raise ValueError(f"unexpected root element {root.tag!r}")
        req_elem = root.find("requirements")
        return cls(
            name=root.findtext("name", ""),
            characteristics=Characteristics(
                root.findtext(
                    "characteristics", Characteristics.COMPUTE.value
                )
            ),
            est_comm_bytes=int(root.findtext("estCommBytes", "0")),
            est_exec_time=float(root.findtext("estExecTime", "0")),
            reference_speed=float(root.findtext("referenceSpeed", "1")),
            data_locality=float(root.findtext("dataLocality", "0")),
            run_count=int(root.findtext("runCount", "0")),
            poll_points=(
                int(root.findtext("pollPoints"))
                if root.findtext("pollPoints") is not None
                else None
            ),
            min_world=int(root.findtext("minWorld", "1")),
            max_world=int(root.findtext("maxWorld", "1")),
            efficiency_curve=tuple(
                float(v)
                for v in root.findtext("efficiencyCurve", "").split(",")
                if v
            ),
            requirements=(
                ResourceRequirements.from_element(req_elem)
                if req_elem is not None
                else ResourceRequirements()
            ),
        )
