"""The XML *application schema* (paper §3.3).

Describes an application's characteristics, estimated communication
size, resource requirements and estimated execution time; "initially
provided by the users and ... updated according to the statistics of
actual executions".
"""

from .appschema import ApplicationSchema, Characteristics, ResourceRequirements
from .store import SchemaStore

__all__ = [
    "ApplicationSchema",
    "Characteristics",
    "ResourceRequirements",
    "SchemaStore",
]
