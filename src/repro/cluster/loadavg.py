"""Unix-style exponentially damped load averages.

The kernel's classic computation: every ``sample_interval`` seconds the
run-queue length ``n`` is folded into three moving averages::

    load = load * k + n * (1 - k),   k = exp(-interval / window)

with windows of 60 s (1-minute), 300 s (5-minute) and 900 s
(15-minute).  The paper's Rule 1 and the §5.3 policies threshold on the
1-minute value; Figure 5 plots it.
"""

from __future__ import annotations

import math
from typing import Any, Callable

#: The traditional kernel sampling period.
DEFAULT_SAMPLE_INTERVAL = 5.0

#: (attribute name, window seconds)
WINDOWS = (("one", 60.0), ("five", 300.0), ("fifteen", 900.0))


class LoadAverage:
    """Tracks 1/5/15-minute load averages of a sampled run-queue length.

    Parameters
    ----------
    env:
        Simulation environment (drives the sampling process).
    runqueue_fn:
        Zero-argument callable returning the instantaneous load (the
        run-queue length, possibly fractional when network processing
        is folded in).
    sample_interval:
        Seconds between samples (default 5, like the Unix kernel).
    """

    def __init__(
        self,
        env: Any,
        runqueue_fn: Callable[[], float],
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
    ):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.env = env
        self.runqueue_fn = runqueue_fn
        self.sample_interval = float(sample_interval)
        self.one = 0.0
        self.five = 0.0
        self.fifteen = 0.0
        self._decay = {
            name: math.exp(-self.sample_interval / window)
            for name, window in WINDOWS
        }
        self._proc = env.process(self._sampler(), name="loadavg")

    def _sampler(self):
        while True:
            yield self.env.timeout(self.sample_interval)
            n = float(self.runqueue_fn())
            for name, _ in WINDOWS:
                k = self._decay[name]
                setattr(self, name, getattr(self, name) * k + n * (1.0 - k))

    def as_tuple(self) -> tuple:
        """(1-min, 5-min, 15-min) like ``os.getloadavg``."""
        return (self.one, self.five, self.fifteen)

    def __repr__(self) -> str:
        return (
            f"<LoadAverage {self.one:.2f} {self.five:.2f} "
            f"{self.fifteen:.2f}>"
        )
