"""Unix-style exponentially damped load averages.

The kernel's classic computation: every ``sample_interval`` seconds the
run-queue length ``n`` is folded into three moving averages::

    load = load * k + n * (1 - k),   k = exp(-interval / window)

with windows of 60 s (1-minute), 300 s (5-minute) and 900 s
(15-minute).  The paper's Rule 1 and the §5.3 policies threshold on the
1-minute value; Figure 5 plots it.

The fold itself lives in :meth:`LoadAverage.fold` and the constants in
:func:`decay_factors` so that the batched host plane
(:mod:`repro.cluster.plane`) folds whole *columns* with bit-identical
arithmetic: numpy's elementwise ``col * k + n * mk`` performs exactly
the two float64 multiplies and one add the scalar path does (no fused
multiply-add), so a vectorized fold and a per-host fold produce the
same bytes — the property ``tests/cluster/test_plane.py`` enforces.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Any, Callable, Optional

#: The traditional kernel sampling period.
DEFAULT_SAMPLE_INTERVAL = 5.0

#: (attribute name, window seconds)
WINDOWS = (("one", 60.0), ("five", 300.0), ("fifteen", 900.0))


@lru_cache(maxsize=None)
def decay_factors(sample_interval: float) -> tuple:
    """``((k, 1 - k), ...)`` for the 1/5/15-minute windows.

    The shared constant table: the scalar sampler and the vectorized
    column fold both read their ``k``/``1 - k`` pairs from here, so the
    two paths cannot drift apart numerically.
    """
    if sample_interval <= 0:
        raise ValueError("sample_interval must be positive")
    return tuple(
        (k, 1.0 - k)
        for k in (
            math.exp(-float(sample_interval) / window)
            for _, window in WINDOWS
        )
    )


class LoadAverage:
    """Tracks 1/5/15-minute load averages of a sampled run-queue length.

    Parameters
    ----------
    env:
        Simulation environment (drives the sampling process).
    runqueue_fn:
        Zero-argument callable returning the instantaneous load (the
        run-queue length, possibly fractional when network processing
        is folded in).
    sample_interval:
        Seconds between samples (default 5, like the Unix kernel).
    sampler:
        Start the periodic sampling process (default).  The batched
        host plane passes ``False`` and drives :meth:`fold` itself —
        one sim process per cluster instead of one per host.
    """

    def __init__(
        self,
        env: Any,
        runqueue_fn: Optional[Callable[[], float]],
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        sampler: bool = True,
    ):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.env = env
        self.runqueue_fn = runqueue_fn
        self.sample_interval = float(sample_interval)
        self.one = 0.0
        self.five = 0.0
        self.fifteen = 0.0
        # Decay constants hoisted to plain float attributes — the
        # sampler's inner loop does three attribute reads instead of
        # three dict lookups by string key.
        (
            (self.k_one, self.mk_one),
            (self.k_five, self.mk_five),
            (self.k_fifteen, self.mk_fifteen),
        ) = decay_factors(self.sample_interval)
        self._proc = (
            env.process(self._sampler(), name="loadavg") if sampler
            else None
        )

    def fold(self, n: float) -> None:
        """Fold one run-queue reading into all three averages.

        The scalar oracle for the host plane's column fold — both use
        the :func:`decay_factors` constants and the same
        multiply/multiply/add shape.
        """
        self.one = self.one * self.k_one + n * self.mk_one
        self.five = self.five * self.k_five + n * self.mk_five
        self.fifteen = self.fifteen * self.k_fifteen + n * self.mk_fifteen

    def _sampler(self):
        while True:
            yield self.env.timeout(self.sample_interval)
            self.fold(float(self.runqueue_fn()))

    def as_tuple(self) -> tuple:
        """(1-min, 5-min, 15-min) like ``os.getloadavg``."""
        return (self.one, self.five, self.fifteen)

    def __repr__(self) -> str:
        return (
            f"<LoadAverage {self.one:.2f} {self.five:.2f} "
            f"{self.fifteen:.2f}>"
        )
