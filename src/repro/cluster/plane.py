"""The batched host plane: per-host sensor state as numpy columns.

The scalar cluster model spends one Python sim-process per host per
sensor family — a load-average sampler each, a duty-cycle generator
each, a monitor loop each — which caps credible sweeps at tens of
hosts.  This module keeps the same state as **columns** — one row per
host in builder order — updated by a *single* periodic process per
cluster: the exponentially damped fold of :mod:`.loadavg` runs as one
vectorized statement (``load = load * k + n * (1 - k)``) across every
host, and background duty cycles / injected hogs become closed-form
run-queue columns instead of event-generating processes.

Two kinds of row:

* **backed** rows belong to a full :class:`~repro.cluster.host.Host`;
  their run queue is gathered from ``host.cpu.run_queue`` each tick and
  the folded averages are written back to the host's (passive)
  :class:`~repro.cluster.loadavg.LoadAverage`, so every consumer — the
  sensor suite, recorders, ``repr`` — reads exactly what it always
  read.
* **analytic** rows model their background load in closed form: each
  duty cycle contributes its exact mean occupancy over the elapsed
  sample window (the integral of its on/off square wave — alias-free)
  and injected hogs add a constant; no CPU jobs, no events.  This is
  where the O(1000s)-host scaling comes from.

Mode switch (mirroring the decision plane's ``vector_mode``):

* ``auto`` — the batched fold drives every row (the default).
* ``scalar`` — each backed host runs its own sampler process, exactly
  the pre-plane model; the oracle for differential tests.  Analytic
  rows require the batched fold and are rejected in this mode.
* ``verify`` — the batched fold runs *and* a shadow scalar fold (the
  very :meth:`~repro.cluster.loadavg.LoadAverage.fold` method, one
  host at a time) folds the same gathered readings; any bitwise
  difference raises :class:`HostPlaneDivergence`.

Bit-identity of ``auto`` against ``scalar`` rests on two facts: the
fold constants come from one table
(:func:`~repro.cluster.loadavg.decay_factors`), and numpy's elementwise
``col * k + n * mk`` performs the same two float64 multiplies and one
add as the scalar statement (no fused multiply-add).  All rows fold on
the cluster-wide grid ``t0 + i * sample_interval``; hosts created
before the simulation starts therefore sample at the exact instants
their per-host samplers would have used.  (A host attached *mid-run*
joins the shared grid instead of starting its own — the one documented
departure from the per-host model.)

The metric vocabulary of :meth:`HostPlane.analytic_sensor_columns`
deliberately mirrors :meth:`repro.monitor.sensors.SensorSuite.sample`;
a tier-1 test asserts the two key sets stay equal.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .loadavg import DEFAULT_SAMPLE_INTERVAL, LoadAverage, decay_factors

#: Host-plane modes, mirroring the registry's ``vector_mode``.
HOST_PLANE_MODES = ("auto", "scalar", "verify")

#: Baseline open sockets reported for analytic rows (matches
#: ``repro.monitor.sensors.BASE_SOCKETS``; asserted equal by tests).
BASE_SOCKETS = 25


class HostPlaneDivergence(AssertionError):
    """The batched fold and the scalar shadow fold disagreed."""


class ClusterStateArrays:
    """Columnar per-host sensor state, one row per host in builder order.

    Growable float64 columns (doubling, like
    :class:`~repro.registry.hostmatrix.HostStateMatrix`).  Owned and
    written by :class:`HostPlane`; everyone else treats the column
    views as read-only.
    """

    #: Grown-in-lockstep float64 columns.
    _COLUMNS = (
        "load1", "load5", "load15", "runq",
        "duty_busy", "duty_period", "duty_phase", "hog_count",
        "mon_busy", "mon_period", "mon_phase",
        "mem_avail_bytes", "mem_avail_pct", "vmem_avail_pct",
        "disk_avail_bytes", "send_kbs", "recv_kbs",
    )

    def __init__(self, capacity: int = 16):
        capacity = max(1, int(capacity))
        self._n = 0
        self._hosts: List[str] = []
        self._index: Dict[str, int] = {}
        for name in self._COLUMNS:
            setattr(self, "_" + name, np.zeros(capacity))
        self._analytic = np.zeros(capacity, dtype=bool)

    # -- shape ----------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def n(self) -> int:
        return self._n

    def row_of(self, host: str) -> Optional[int]:
        return self._index.get(host)

    def host_at(self, row: int) -> str:
        return self._hosts[row]

    # -- mutation -------------------------------------------------------
    def _grow(self) -> None:
        cap = max(1, self._analytic.shape[0]) * 2
        for name in self._COLUMNS:
            attr = "_" + name
            col = np.zeros(cap)
            col[: self._n] = getattr(self, attr)[: self._n]
            setattr(self, attr, col)
        analytic = np.zeros(cap, dtype=bool)
        analytic[: self._n] = self._analytic[: self._n]
        self._analytic = analytic

    def add_row(self, host: str) -> int:
        if host in self._index:
            raise ValueError(f"host {host!r} already has a row")
        if self._n == self._analytic.shape[0]:
            self._grow()
        row = self._n
        self._n += 1
        self._hosts.append(host)
        self._index[host] = row
        for name in self._COLUMNS:
            getattr(self, "_" + name)[row] = 0.0
        self._analytic[row] = False
        return row

    # -- column views ---------------------------------------------------
    def col(self, name: str) -> np.ndarray:
        """Active-row view of one column (raises for unknown names)."""
        if name not in self._COLUMNS:
            raise KeyError(name)
        return getattr(self, "_" + name)[: self._n]

    @property
    def analytic(self) -> np.ndarray:
        return self._analytic[: self._n]

    @property
    def hosts(self) -> List[str]:
        return self._hosts


class HostPlane:
    """The single periodic sampler over :class:`ClusterStateArrays`."""

    def __init__(
        self,
        env: Any,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        mode: str = "auto",
    ):
        if mode not in HOST_PLANE_MODES:
            raise ValueError(
                f"host_plane must be one of {HOST_PLANE_MODES}, "
                f"got {mode!r}"
            )
        self.env = env
        self.mode = mode
        self.sample_interval = float(sample_interval)
        self.arrays = ClusterStateArrays()
        #: (row, host) pairs whose run queue is gathered each tick.
        self._backed: List[Tuple[int, Any]] = []
        #: Row-aligned passive LoadAverage targets for write-back.
        self._views: List[Optional[LoadAverage]] = []
        #: Scalar shadow state for ``verify`` ([one, five, fifteen]).
        self._shadow: List[List[float]] = []
        self.ticks = 0
        self.folds = 0
        self._proc = None
        ((self._k1, self._mk1), (self._k5, self._mk5),
         (self._k15, self._mk15)) = decay_factors(self.sample_interval)

    # -- registration ---------------------------------------------------
    @property
    def batched(self) -> bool:
        return self.mode != "scalar"

    def attach(self, host: Any) -> LoadAverage:
        """Register ``host`` as a backed row; returns its load average.

        In ``scalar`` mode the returned :class:`LoadAverage` runs its
        own sampler process (the pre-plane model); otherwise it is
        passive and this plane folds it in batch.
        """
        row = self.arrays.add_row(host.name)
        loadavg = LoadAverage(
            host.env, lambda: host.cpu.run_queue,
            sample_interval=self.sample_interval,
            sampler=not self.batched,
        )
        self._backed.append((row, host))
        self._views.append(loadavg)
        self._shadow.append([0.0, 0.0, 0.0])
        if self.batched and self._proc is None:
            self._proc = self.env.process(self._run(), name="hostplane")
        return loadavg

    def set_analytic(
        self,
        name: str,
        mean_load: float = 0.0,
        period: float = 2.0,
        phase: float = 0.0,
        static: Optional[Dict[str, float]] = None,
    ) -> None:
        """Switch a row to closed-form load modelling.

        ``mean_load``/``period``/``phase`` describe the background duty
        cycle (busy ``mean_load * period`` wall-seconds per period);
        ``static`` pins the memory/disk sensor columns (defaults to the
        backing host's current readings).
        """
        if not self.batched:
            raise ValueError("analytic rows require host_plane=auto/verify")
        if not 0 <= mean_load < 1:
            raise ValueError("mean_load must lie in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        row = self.arrays.row_of(name)
        if row is None:
            raise KeyError(name)
        a = self.arrays
        a.analytic[row] = True
        a.col("duty_busy")[row] = float(mean_load) * float(period)
        a.col("duty_period")[row] = float(period)
        a.col("duty_phase")[row] = float(phase)
        host = next(h for r, h in self._backed if r == row)
        static = static or {
            "mem_avail_bytes": host.memory.physical_available,
            "mem_avail_pct": host.memory.physical_available_pct,
            "vmem_avail_pct": host.memory.virtual_available_pct,
            "disk_avail_bytes": host.disks.total_available(),
        }
        for key, value in static.items():
            a.col(key)[row] = float(value)
        # Analytic rows never gather from the CPU model.
        self._backed = [(r, h) for r, h in self._backed if r != row]

    def set_monitor_duty(
        self, rows: np.ndarray, busy: float, period: float,
        phases: np.ndarray,
    ) -> None:
        """Model the monitor's per-cycle CPU cost as a second duty
        family on analytic rows (the Figure 5 overhead, in closed
        form)."""
        a = self.arrays
        a.col("mon_busy")[rows] = float(busy)
        a.col("mon_period")[rows] = float(period)
        a.col("mon_phase")[rows] = np.asarray(phases, dtype=float)

    def inject_hogs(self, name: str, count: int = 1) -> None:
        """Add compute-bound background tasks to an analytic row."""
        row = self.arrays.row_of(name)
        if row is None:
            raise KeyError(name)
        if not self.arrays.analytic[row]:
            raise ValueError(f"{name!r} is not an analytic row")
        self.arrays.col("hog_count")[row] += int(count)

    def clear_hogs(self, name: str) -> None:
        row = self.arrays.row_of(name)
        if row is None:
            raise KeyError(name)
        self.arrays.col("hog_count")[row] = 0.0

    def analytic_rows(self) -> np.ndarray:
        return np.flatnonzero(self.arrays.analytic)

    # -- the batched tick -----------------------------------------------
    def _run(self):
        while True:
            yield self.sample_interval  # bare-delay fast path
            self._tick()

    @staticmethod
    def _on_time(x: np.ndarray, period: np.ndarray,
                 busy: np.ndarray) -> np.ndarray:
        """Signed busy-seconds of an eternal square wave over [0, x)."""
        return (busy * np.floor(x / period)
                + np.minimum(np.mod(x, period), busy))

    def _analytic_runq(self, t: float, rows: np.ndarray) -> np.ndarray:
        """Closed-form run queue of analytic rows for the sample ending
        at ``t``: each duty family contributes its **exact mean
        occupancy** over the elapsed sample interval (the integral of
        the on/off square wave, in closed form) plus the constant hog
        count.

        Folding the windowed mean instead of a point sample keeps the
        model alias-free: a 2 s duty cycle point-sampled on the 5 s
        grid would hit only ``gcd``-many points of the wave and read a
        load unrelated to ``mean_load``; the windowed mean converges to
        ``mean_load`` for every period/phase combination.
        """
        a = self.arrays
        q = a.col("hog_count")[rows].copy()
        dt = self.sample_interval
        for family in ("duty", "mon"):
            period = a.col(f"{family}_period")[rows]
            busy = a.col(f"{family}_busy")[rows]
            phase = a.col(f"{family}_phase")[rows]
            active = np.flatnonzero(period > 0)
            if active.size:
                p, b = period[active], busy[active]
                x1 = t - phase[active]
                q[active] += (
                    self._on_time(x1, p, b)
                    - self._on_time(x1 - dt, p, b)
                ) / dt
        return q

    def _tick(self) -> None:
        a = self.arrays
        n = a.n
        if n == 0:
            self.ticks += 1
            return
        t = self.env.now
        runq = a.col("runq")
        for row, host in self._backed:
            runq[row] = host.cpu.run_queue
        analytic = self.analytic_rows()
        if analytic.size:
            runq[analytic] = self._analytic_runq(t, analytic)
        # The vectorized fold — one statement per window, all hosts.
        load1, load5, load15 = (a.col("load1"), a.col("load5"),
                                a.col("load15"))
        load1 *= self._k1
        load1 += runq * self._mk1
        load5 *= self._k5
        load5 += runq * self._mk5
        load15 *= self._k15
        load15 += runq * self._mk15
        if self.mode == "verify":
            self._verify_fold(runq, load1, load5, load15)
        # Write-back: consumers keep reading host.loadavg.{one,five,...}.
        for view, one, five, fifteen in zip(
            self._views, load1.tolist(), load5.tolist(), load15.tolist()
        ):
            view.one = one
            view.five = five
            view.fifteen = fifteen
        self.ticks += 1
        self.folds += n

    def _verify_fold(self, runq, load1, load5, load15) -> None:
        """Shadow scalar fold (the LoadAverage.fold arithmetic, one
        host at a time) against the batched columns, bit for bit."""
        k1, mk1 = self._k1, self._mk1
        k5, mk5 = self._k5, self._mk5
        k15, mk15 = self._k15, self._mk15
        for i, shadow in enumerate(self._shadow):
            ni = runq[i]
            shadow[0] = shadow[0] * k1 + ni * mk1
            shadow[1] = shadow[1] * k5 + ni * mk5
            shadow[2] = shadow[2] * k15 + ni * mk15
            if (shadow[0] != load1[i] or shadow[1] != load5[i]
                    or shadow[2] != load15[i]):
                raise HostPlaneDivergence(
                    f"host plane fold diverged on row {i} "
                    f"({self.arrays.host_at(i)}) at t={self.env.now}: "
                    f"batched ({load1[i]!r}, {load5[i]!r}, "
                    f"{load15[i]!r}) != scalar {tuple(shadow)!r}"
                )

    # -- sensor columns for the monitor hub ------------------------------
    def analytic_sensor_columns(
        self, rows: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """One coherent column snapshot of the analytic rows, in the
        exact metric vocabulary of ``SensorSuite.sample``.

        Utilization is the closed-form mean: duty fraction plus
        monitor-cost fraction, saturated to 1 when hogs run.
        """
        a = self.arrays
        util = np.zeros(rows.shape[0])
        for family in ("duty", "mon"):
            period = a.col(f"{family}_period")[rows]
            busy = a.col(f"{family}_busy")[rows]
            active = period > 0
            with np.errstate(invalid="ignore", divide="ignore"):
                util[active] += busy[active] / period[active]
        util = np.minimum(
            1.0, util + np.where(a.col("hog_count")[rows] > 0, 1.0, 0.0)
        )
        proc_count = (
            (a.col("duty_period")[rows] > 0).astype(float)
            + a.col("hog_count")[rows]
        )
        send = a.col("send_kbs")[rows]
        recv = a.col("recv_kbs")[rows]
        return {
            "loadavg1": a.col("load1")[rows],
            "loadavg5": a.col("load5")[rows],
            "loadavg15": a.col("load15")[rows],
            "cpu_util": util,
            "cpu_idle_pct": 100.0 * (1.0 - util),
            "proc_count": proc_count,
            "socket_count": np.full(rows.shape[0], float(BASE_SOCKETS)),
            "mem_avail_bytes": a.col("mem_avail_bytes")[rows],
            "mem_avail_pct": a.col("mem_avail_pct")[rows],
            "vmem_avail_pct": a.col("vmem_avail_pct")[rows],
            "disk_avail_bytes": a.col("disk_avail_bytes")[rows],
            "send_kbs": send,
            "recv_kbs": recv,
            "comm_mbs": (send + recv) / 1024.0,
        }
