"""Processor model: fair-share scheduling plus network-processing load.

A :class:`Cpu` wraps a :class:`~repro.sim.fairshare.FairShareServer`
whose rate is the host's compute speed in *work units per second* (one
work unit == one CPU-second on a reference 1.0-speed machine).

In 2004-era systems, moving bytes through the TCP stack consumed
significant CPU.  The network layer reports each host's aggregate flow
rate here via :meth:`set_comm_load` as an equivalent CPU demand ``f``
(CPU-seconds per second).  Protocol processing competes with compute
jobs under processor sharing with weight ``f``: with ``n`` compute jobs
running, the jobs collectively receive ``n / (n + f)`` of the CPU —
e.g. the paper's workstation 2, whose ~7 MB/s bidirectional stream
shows up as a 0.97 load average while idle, and roughly halves the
throughput of one compute job placed on it (Table 2).
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.fairshare import FairShareServer, ShareJob

#: Upper bound on the protocol-processing demand (sanity clamp).
MAX_COMM_LOAD = 8.0


class Cpu:
    """One host's processor."""

    def __init__(self, env: Any, speed: float = 1.0, name: str = "cpu"):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.env = env
        self.speed = float(speed)
        self.name = name
        self._server = FairShareServer(env, rate=speed, name=name)
        self._server.on_jobs_changed = self._rebalance
        self._comm_load = 0.0
        self._comm_busy = 0.0   # ∫ busy-fraction-from-comm-alone dt
        self._comm_queue = 0.0  # ∫ comm demand dt (load contribution)
        self._comm_last = env.now

    # -- compute jobs -------------------------------------------------------
    def execute(
        self, work: float, weight: float = 1.0, label: str = ""
    ) -> ShareJob:
        """Submit ``work`` CPU-seconds of compute; returns completion event."""
        return self._server.submit(work, weight=weight, label=label)

    @property
    def run_queue(self) -> float:
        """Instantaneous load: compute jobs plus protocol-processing load."""
        return self._server.active_jobs + self._comm_load

    @property
    def active_jobs(self) -> int:
        return self._server.active_jobs

    @property
    def jobs(self) -> list:
        return self._server.jobs

    # -- network-processing coupling -------------------------------------
    @property
    def comm_load(self) -> float:
        """Current protocol-processing demand (CPU-seconds per second)."""
        return self._comm_load

    # Backward-compatible alias used by monitors/tests.
    @property
    def comm_fraction(self) -> float:
        return self._comm_load

    def set_comm_load(self, load: float) -> None:
        """Set the protocol-processing demand; 0 clears it."""
        load = max(0.0, min(float(load), MAX_COMM_LOAD))
        self._accumulate_comm()
        if load != self._comm_load:
            self._comm_load = load
            self._rebalance()

    def _rebalance(self) -> None:
        """Re-split the CPU between comm processing and compute jobs.

        With ``n`` jobs and comm demand ``f``, jobs receive the fraction
        ``n / (n + f)`` of the CPU (equal-weight processor sharing with
        the protocol work).
        """
        self._accumulate_comm()
        n = self._server.active_jobs
        if n == 0:
            rate = self.speed  # no jobs to serve; rate is moot
        else:
            rate = self.speed * n / (n + self._comm_load)
        if rate != self._server.rate:
            self._server.set_rate(rate)

    def _accumulate_comm(self) -> None:
        """Integrate the busy time contributed by comm processing.

        While compute jobs run, the CPU is fully busy and the server's
        own busy integral covers it; comm contributes extra busy time
        only while no compute job is active.
        """
        now = self.env.now
        dt = now - self._comm_last
        if dt > 0:
            self._comm_queue += self._comm_load * dt
            if self._server.active_jobs == 0:
                self._comm_busy += min(self._comm_load, 1.0) * dt
        self._comm_last = now

    # -- accounting ---------------------------------------------------------
    def busy_time(self) -> float:
        """Cumulative CPU-busy time (compute presence + comm-only time)."""
        self._accumulate_comm()
        return self._server.busy_time() + self._comm_busy

    def compute_busy_time(self) -> float:
        """Cumulative time with at least one compute job."""
        return self._server.busy_time()

    def work_done(self) -> float:
        """Total compute work served (reference CPU-seconds)."""
        return self._server.work_done()

    def load_time(self) -> float:
        """Cumulative ∫ run-queue dt — the exact quantity the Unix
        load average estimates by sampling.  Differencing two reads
        gives a noise-free mean load over an interval."""
        self._accumulate_comm()
        return self._server.queue_time() + self._comm_queue

    def utilization_sample(self, state: Optional[dict]) -> tuple:
        """Incremental utilization since the previous sample.

        Call with the ``state`` dict returned by the previous call (or
        ``None`` for the first); returns ``(utilization, new_state)``.
        """
        busy = self.busy_time()
        now = self.env.now
        if state is None:
            return 0.0, {"busy": busy, "now": now}
        dt = now - state["now"]
        util = 0.0 if dt <= 0 else (busy - state["busy"]) / dt
        return min(util, 1.0), {"busy": busy, "now": now}

    def __repr__(self) -> str:
        return (
            f"<Cpu {self.name!r} speed={self.speed} "
            f"jobs={self.active_jobs} comm={self._comm_load:.2f}>"
        )
