"""Per-host process table.

The paper's monitor counts active processes (a Policy 2/3 trigger is
"the number of active processes is greater than 150") and the
registry/scheduler reads a process's start time "from the *pid* file
time-stamp" to estimate completion.  This table is the simulated
equivalent of ``ps``: every simulated activity registers an entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class ProcEntry:
    """One row of the process table."""

    pid: int
    name: str
    start_time: float
    #: "system", "background", "app" — apps are the migration-enabled ones.
    kind: str = "system"
    #: Set for migration-enabled applications: the HPCM runtime handle.
    hpcm_runtime: Optional[Any] = None
    #: Free-form extra attributes (e.g. estimated completion time).
    attrs: dict = field(default_factory=dict)

    @property
    def migration_enabled(self) -> bool:
        return self.hpcm_runtime is not None


class ProcessTable:
    """Process bookkeeping for one host."""

    def __init__(self, env: Any):
        self.env = env
        self._next_pid = 100  # low pids reserved, Unix-style
        self._procs: dict[int, ProcEntry] = {}

    def spawn(
        self,
        name: str,
        kind: str = "system",
        hpcm_runtime: Optional[Any] = None,
        **attrs: Any,
    ) -> ProcEntry:
        """Register a new process; returns its table entry."""
        pid = self._next_pid
        self._next_pid += 1
        entry = ProcEntry(
            pid=pid,
            name=name,
            start_time=self.env.now,
            kind=kind,
            hpcm_runtime=hpcm_runtime,
            attrs=dict(attrs),
        )
        self._procs[pid] = entry
        return entry

    def exit(self, pid: int) -> None:
        """Remove a process (no-op if already gone)."""
        self._procs.pop(pid, None)

    def get(self, pid: int) -> Optional[ProcEntry]:
        return self._procs.get(pid)

    def count(self, kind: Optional[str] = None) -> int:
        """Number of active processes, optionally filtered by kind."""
        if kind is None:
            return len(self._procs)
        return sum(1 for p in self._procs.values() if p.kind == kind)

    def migratable(self) -> list:
        """All migration-enabled application entries."""
        return [p for p in self._procs.values() if p.migration_enabled]

    def entries(self) -> list:
        return list(self._procs.values())

    def __len__(self) -> int:
        return len(self._procs)

    def __contains__(self, pid: int) -> bool:
        return pid in self._procs
