"""Background workload generators.

The paper's experiments inject load three ways:

* steady light activity (the idle cluster still shows a ~0.256 load
  average in Figure 5) — :class:`DutyCycleLoad`;
* "additional tasks" that overload the source workstation in §5.2/§5.3
  — :class:`CpuHog`;
* the workstation-2 ↔ workstation-5 bulk communication of Table 2
  (6.71–7.78 MB/s) — :class:`BulkTransferLoad`.

All generators register entries in the host process table so the
monitor's process-count sensor sees them.
"""

from __future__ import annotations

import math
from typing import Any, Optional


class DutyCycleLoad:
    """Periodic short CPU bursts producing a target mean load.

    A burst of ``busy`` CPU-seconds every ``period`` seconds yields a
    long-run load average of roughly ``busy / period`` (for load < 1).
    """

    def __init__(
        self,
        host: Any,
        mean_load: float,
        period: float = 2.0,
        name: str = "daemon",
        jitter: float = 0.0,
        rng: Optional[Any] = None,
    ):
        if not 0 <= mean_load < 1:
            raise ValueError("mean_load must lie in [0, 1)")
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter and rng is None:
            raise ValueError("jitter requires an rng")
        self.host = host
        self.mean_load = float(mean_load)
        self.period = float(period)
        self.name = name
        self.jitter = float(jitter)
        self.rng = rng
        self.entry = host.procs.spawn(name, kind="system")
        self.proc = host.env.process(self._run(), name=f"duty:{name}")
        self._stopped = False

    def _run(self):
        env = self.host.env
        busy = self.mean_load * self.period * self.host.cpu.speed
        while not self._stopped:
            period = self.period
            if self.jitter:
                period *= 1.0 + self.jitter * (self.rng.random() * 2 - 1)
            if busy > 0:
                yield self.host.cpu.execute(busy, label=self.name)
            idle = max(period - busy / self.host.cpu.speed, 0.0)
            yield idle if idle > 0 else period  # bare-delay fast path

    def stop(self) -> None:
        self._stopped = True
        self.host.procs.exit(self.entry.pid)


class CpuHog:
    """A compute-bound background task (the paper's 'additional task').

    Runs ``duration`` CPU-seconds of work (wall time stretches under
    contention).  ``count`` parallel hogs model several injected tasks.
    """

    def __init__(
        self,
        host: Any,
        duration: float = math.inf,
        count: int = 1,
        name: str = "hog",
    ):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.host = host
        self.duration = duration
        self.name = name
        self.entries = [
            host.procs.spawn(f"{name}[{i}]", kind="background")
            for i in range(count)
        ]
        self.jobs = [
            host.cpu.execute(
                duration if math.isfinite(duration) else 1e18,
                label=f"{name}[{i}]",
            )
            for i in range(count)
        ]
        self.done = host.env.all_of(self.jobs)
        self.done.callbacks.append(lambda ev: self._cleanup())
        self._stopped = False

    def _cleanup(self) -> None:
        for entry in self.entries:
            self.host.procs.exit(entry.pid)

    def stop(self) -> None:
        """Kill the hogs early."""
        if self._stopped:
            return
        self._stopped = True
        for job in self.jobs:
            job.cancel()
        self._cleanup()


class BulkTransferLoad:
    """A long-lived bidirectional bulk flow between two hosts.

    Models Table 2's workstation 2 "busy in communication with the 5th
    machine" at 6.71–7.78 MB/s.  Both directions are opened so that both
    NIC halves (and both CPUs, via the protocol-processing coupling)
    are loaded.
    """

    def __init__(
        self,
        host_a: Any,
        host_b: Any,
        rate: float,
        bidirectional: bool = True,
        name: str = "bulk",
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.host_a = host_a
        self.host_b = host_b
        self.name = name
        network = host_a.network
        self.entry_a = host_a.procs.spawn(name, kind="background")
        self.entry_b = host_b.procs.spawn(name, kind="background")
        self.flows = [
            network.open_stream(
                host_a.name, host_b.name, rate_cap=rate, label=f"{name}:a->b"
            )
        ]
        if bidirectional:
            self.flows.append(
                network.open_stream(
                    host_b.name, host_a.name, rate_cap=rate,
                    label=f"{name}:b->a",
                )
            )
        self._stopped = False

    @property
    def current_rate(self) -> float:
        """Aggregate achieved rate across the flow directions."""
        return sum(f.rate for f in self.flows)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        network = self.host_a.network
        for flow in self.flows:
            network.close_stream(flow)
        self.host_a.procs.exit(self.entry_a.pid)
        self.host_b.procs.exit(self.entry_b.pid)


class ChatterLoad:
    """Light periodic request/reply traffic between two hosts.

    Provides the baseline ~5.8 KB/s send and ~6.0 KB/s receive rates
    (as seen from ``host_a``) the paper measures in Figure 6 even
    without the rescheduler.  Request and reply sizes may differ.
    """

    def __init__(
        self,
        host_a: Any,
        host_b: Any,
        bytes_out: int = 2000,
        bytes_back: int = 2060,
        interval: float = 0.335,
        name: str = "chatter",
    ):
        if bytes_out <= 0 or bytes_back <= 0 or interval <= 0:
            raise ValueError("message sizes and interval must be positive")
        self.host_a = host_a
        self.host_b = host_b
        self.bytes_out = int(bytes_out)
        self.bytes_back = int(bytes_back)
        self.interval = float(interval)
        self.name = name
        self._stopped = False
        self.proc = host_a.env.process(self._run(), name=f"chatter:{name}")

    def _run(self):
        env = self.host_a.env
        network = self.host_a.network
        a, b = self.host_a.name, self.host_b.name
        while not self._stopped:
            yield network.transfer(a, b, self.bytes_out, label=self.name)
            yield network.transfer(b, a, self.bytes_back, label=self.name)
            yield self.interval  # bare-delay fast path

    def stop(self) -> None:
        self._stopped = True
