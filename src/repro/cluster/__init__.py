"""Cluster substrate: hosts, CPUs, memory, disks, network, load.

A deterministic model of the paper's 64-node Sun Blade testbed:
processor-sharing CPUs with Unix load averages, a max-min-fair fluid
network with per-byte CPU cost, per-host process tables, and background
workload generators.
"""

from .background import BulkTransferLoad, ChatterLoad, CpuHog, DutyCycleLoad
from .builder import DEFAULT_CPU_PER_BYTE, Cluster
from .cpu import Cpu
from .disk import Disk, DiskSet
from .host import Host, StaticInfo
from .loadavg import LoadAverage
from .memory import Memory
from .network import (
    DEFAULT_LATENCY,
    ETHERNET_100MBPS,
    Flow,
    HostDownError,
    Network,
)
from .plane import (
    HOST_PLANE_MODES,
    ClusterStateArrays,
    HostPlane,
    HostPlaneDivergence,
)
from .proctable import ProcEntry, ProcessTable

__all__ = [
    "BulkTransferLoad",
    "ChatterLoad",
    "Cluster",
    "ClusterStateArrays",
    "Cpu",
    "CpuHog",
    "DEFAULT_CPU_PER_BYTE",
    "DEFAULT_LATENCY",
    "Disk",
    "DiskSet",
    "DutyCycleLoad",
    "ETHERNET_100MBPS",
    "Flow",
    "HOST_PLANE_MODES",
    "Host",
    "HostDownError",
    "HostPlane",
    "HostPlaneDivergence",
    "LoadAverage",
    "Memory",
    "Network",
    "ProcEntry",
    "ProcessTable",
    "StaticInfo",
]
