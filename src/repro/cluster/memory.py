"""Host memory model.

Simple reservation accounting: processes claim and release bytes of
physical and virtual memory.  The monitor's memory sensors (paper §3.1:
"available memory and percentage of available memory for both virtual
and physical memory") read these counters.
"""

from __future__ import annotations


class Memory:
    """Physical + virtual memory accounting for one host."""

    def __init__(
        self,
        physical_total: int = 128 * 1024 * 1024,  # Sun Blade 100: 128 MB
        swap_total: int = 256 * 1024 * 1024,
    ):
        if physical_total <= 0 or swap_total < 0:
            raise ValueError("memory sizes must be positive")
        self.physical_total = int(physical_total)
        self.swap_total = int(swap_total)
        self.physical_used = 0
        self.swap_used = 0

    # -- capacity views -----------------------------------------------------
    @property
    def virtual_total(self) -> int:
        return self.physical_total + self.swap_total

    @property
    def physical_available(self) -> int:
        return self.physical_total - self.physical_used

    @property
    def virtual_used(self) -> int:
        return self.physical_used + self.swap_used

    @property
    def virtual_available(self) -> int:
        return self.virtual_total - self.virtual_used

    @property
    def physical_available_pct(self) -> float:
        return 100.0 * self.physical_available / self.physical_total

    @property
    def virtual_available_pct(self) -> float:
        return 100.0 * self.virtual_available / self.virtual_total

    # -- reservations -------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        """Claim ``nbytes``; spills to swap when physical memory is full.

        Raises :class:`MemoryError` when virtual memory is exhausted.
        """
        if nbytes < 0:
            raise ValueError("cannot allocate a negative amount")
        physical = min(nbytes, self.physical_available)
        swap = nbytes - physical
        if swap > self.swap_total - self.swap_used:
            raise MemoryError(
                f"out of virtual memory: need {nbytes}, "
                f"available {self.virtual_available}"
            )
        self.physical_used += physical
        self.swap_used += swap

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` (swap first, mirroring allocation spill)."""
        if nbytes < 0:
            raise ValueError("cannot free a negative amount")
        from_swap = min(nbytes, self.swap_used)
        self.swap_used -= from_swap
        self.physical_used = max(0, self.physical_used - (nbytes - from_swap))

    def can_fit(self, nbytes: int) -> bool:
        """Would ``allocate(nbytes)`` succeed?"""
        return nbytes <= self.virtual_available

    def __repr__(self) -> str:
        return (
            f"<Memory phys {self.physical_used}/{self.physical_total} "
            f"swap {self.swap_used}/{self.swap_total}>"
        )
