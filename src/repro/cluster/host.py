"""Host model: one workstation of the cluster.

Bundles CPU, memory, disks, process table, NIC attachment and load
average, plus the static description the paper's monitor registers once
(host name, IP, OS, memory size — §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .cpu import Cpu
from .disk import DiskSet
from .loadavg import LoadAverage
from .memory import Memory
from .proctable import ProcessTable


@dataclass(frozen=True)
class StaticInfo:
    """One-time registration data (paper §3.1 'static information')."""

    hostname: str
    ip: str
    os: str
    arch: str
    cpu_mhz: float
    memory_bytes: int
    #: Relative compute speed (reference machine = 1.0).
    cpu_speed: float = 1.0
    #: Special capabilities an application schema may require.
    features: tuple = ()
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        data = {
            "hostname": self.hostname,
            "ip": self.ip,
            "os": self.os,
            "arch": self.arch,
            "cpu_mhz": self.cpu_mhz,
            "memory_bytes": self.memory_bytes,
            "cpu_speed": self.cpu_speed,
            "features": ",".join(self.features),
        }
        data.update(self.extras)
        return data


class Host:
    """A workstation in the simulated cluster."""

    def __init__(
        self,
        env: Any,
        name: str,
        network: Any,
        cpu_speed: float = 1.0,
        memory_bytes: int = 128 * 1024 * 1024,
        swap_bytes: int = 256 * 1024 * 1024,
        bandwidth: Optional[float] = None,
        ip: Optional[str] = None,
        os_name: str = "SunOS 5.8",
        arch: str = "sparc",
        cpu_mhz: float = 500.0,
        features: tuple = (),
        plane: Optional[Any] = None,
    ):
        self.env = env
        self.name = name
        self.network = network
        self.cpu = Cpu(env, speed=cpu_speed, name=f"{name}.cpu")
        self.memory = Memory(memory_bytes, swap_bytes)
        self.disks = DiskSet()
        self.disks.add("/", total=20 * 10**9, used=6 * 10**9)
        self.disks.add("/export/home", total=40 * 10**9, used=10 * 10**9)
        self.procs = ProcessTable(env)
        # With a batched host plane the load average is a passive view
        # the plane folds in batch; without one (or in scalar mode) it
        # runs its own sampler process, the pre-plane model.
        if plane is not None:
            self.loadavg = plane.attach(self)
        else:
            self.loadavg = LoadAverage(env, lambda: self.cpu.run_queue)
        self.static_info = StaticInfo(
            hostname=name,
            ip=ip or _auto_ip(name),
            os=os_name,
            arch=arch,
            cpu_mhz=cpu_mhz,
            memory_bytes=memory_bytes,
            cpu_speed=cpu_speed,
            features=tuple(features),
        )
        network.add_host(name, cpu=self.cpu, bandwidth=bandwidth)

    # -- convenience views ---------------------------------------------
    @property
    def up(self) -> bool:
        return self.network.host_is_up(self.name)

    def crash(self) -> None:
        """Take the host down (kills its flows; monitors stop updating)."""
        self.network.set_host_up(self.name, False)

    def recover(self) -> None:
        self.network.set_host_up(self.name, True)

    def bytes_sent(self) -> float:
        return self.network.bytes_sent(self.name)

    def bytes_received(self) -> float:
        return self.network.bytes_received(self.name)

    def __repr__(self) -> str:
        return f"<Host {self.name} load={self.loadavg.one:.2f}>"


def _auto_ip(name: str) -> str:
    """Deterministic fake IP derived from the host name.

    Uses CRC32 (not ``hash``, which is salted per interpreter run).
    """
    import zlib

    h = zlib.crc32(name.encode("utf-8"))
    return f"10.{(h >> 16) % 256}.{(h >> 8) % 256}.{h % 254 + 1}"
