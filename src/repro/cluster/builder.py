"""Convenience builders for experiment clusters."""

from __future__ import annotations

from typing import Any, Optional

from ..sim.kernel import Environment
from ..sim.rng import RngRegistry
from .host import Host
from .network import ETHERNET_100MBPS, Network
from .plane import HostPlane

#: Default protocol-processing cost: tuned so that a ~7.25 MB/s
#: bidirectional bulk flow yields a ≈0.97 load on a speed-1.0 host —
#: the workstation-2 situation in Table 2 of the paper.
DEFAULT_CPU_PER_BYTE = 6.7e-8


class Cluster:
    """A simulated cluster: environment + network + hosts + RNG."""

    def __init__(
        self,
        n_hosts: int = 2,
        seed: int = 0,
        bandwidth: float = ETHERNET_100MBPS,
        latency: float = 1e-4,
        cpu_per_byte: float = DEFAULT_CPU_PER_BYTE,
        cpu_speed: float = 1.0,
        host_prefix: str = "ws",
        env: Optional[Environment] = None,
        host_plane: str = "auto",
    ):
        if n_hosts < 1:
            raise ValueError("need at least one host")
        self.env = env or Environment()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.env,
            default_bandwidth=bandwidth,
            latency=latency,
            cpu_per_byte=cpu_per_byte,
        )
        # The batched host plane: one periodic fold process for the
        # whole cluster (mode "scalar" keeps per-host samplers, the
        # oracle path — see repro.cluster.plane).
        self.plane = HostPlane(self.env, mode=host_plane)
        self.hosts: dict[str, Host] = {}
        for i in range(1, n_hosts + 1):
            self.add_host(f"{host_prefix}{i}", cpu_speed=cpu_speed)

    def add_host(self, name: str, **kwargs: Any) -> Host:
        """Attach an extra host (heterogeneous parameters welcome)."""
        if name in self.hosts:
            raise ValueError(f"host {name!r} already exists")
        host = Host(self.env, name, self.network, plane=self.plane,
                    **kwargs)
        self.hosts[name] = host
        return host

    def add_analytic_host(
        self,
        name: str,
        mean_load: float = 0.0,
        period: float = 2.0,
        phase: float = 0.0,
        **kwargs: Any,
    ) -> Host:
        """Attach a host whose background load is modelled in closed
        form by the host plane — no per-host sim processes at all.

        This is the mega-cluster row: a duty cycle of ``mean_load``
        (on ``mean_load * period`` wall-seconds per ``period``, offset
        by ``phase``) contributes to the run queue analytically, so
        thousands of these cost one batched fold per tick, not
        thousands of events.  Requires ``host_plane`` auto/verify.
        """
        host = self.add_host(name, **kwargs)
        self.plane.set_analytic(
            name, mean_load=mean_load, period=period, phase=phase
        )
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def host_list(self) -> list:
        return list(self.hosts.values())

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def __getitem__(self, name: str) -> Host:
        return self.hosts[name]

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts.values())
