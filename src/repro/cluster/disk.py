"""Disk / mount-point model.

The paper's monitor "gathers the disk usage parameters of the various
mount points" (§3.1).  A :class:`Disk` is a mount point with capacity
accounting; a host owns several.
"""

from __future__ import annotations


class Disk:
    """One mount point."""

    def __init__(self, mount: str, total: int, used: int = 0):
        if total <= 0:
            raise ValueError("disk size must be positive")
        if not 0 <= used <= total:
            raise ValueError("used must lie in [0, total]")
        self.mount = mount
        self.total = int(total)
        self.used = int(used)

    @property
    def available(self) -> int:
        return self.total - self.used

    @property
    def used_pct(self) -> float:
        return 100.0 * self.used / self.total

    def write(self, nbytes: int) -> None:
        """Consume ``nbytes``; raises :class:`OSError` when full."""
        if nbytes < 0:
            raise ValueError("cannot write a negative amount")
        if nbytes > self.available:
            raise OSError(f"disk full on {self.mount}")
        self.used += nbytes

    def delete(self, nbytes: int) -> None:
        """Release ``nbytes``."""
        if nbytes < 0:
            raise ValueError("cannot delete a negative amount")
        self.used = max(0, self.used - nbytes)

    def __repr__(self) -> str:
        return f"<Disk {self.mount} {self.used}/{self.total}>"


class DiskSet:
    """All mount points of a host."""

    def __init__(self):
        self._disks: dict[str, Disk] = {}

    def add(self, mount: str, total: int, used: int = 0) -> Disk:
        if mount in self._disks:
            raise ValueError(f"mount point {mount!r} already exists")
        disk = Disk(mount, total, used)
        self._disks[mount] = disk
        return disk

    def get(self, mount: str) -> Disk:
        return self._disks[mount]

    def mounts(self) -> list:
        return sorted(self._disks)

    def total_available(self) -> int:
        return sum(d.available for d in self._disks.values())

    def __iter__(self):
        return iter(self._disks.values())

    def __len__(self) -> int:
        return len(self._disks)

    def __contains__(self, mount: str) -> bool:
        return mount in self._disks
