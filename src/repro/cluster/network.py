"""Fluid-flow network model with max-min fair bandwidth sharing.

Each host has a full-duplex NIC: a transmit capacity and a receive
capacity (bytes/second).  Active flows (finite transfers or open-ended
streams) share bandwidth according to **max-min fairness** computed by
progressive filling — the standard fluid approximation of TCP-fair
sharing on a switched LAN like the paper's 100 Mbps Ethernet.

Two couplings feed the rest of the system:

* per-host cumulative tx/rx byte counters — the monitor's KB/s sensors
  (paper Figures 6 and 8) differentiate these;
* protocol-processing CPU cost — every byte moved charges
  ``cpu_per_byte`` CPU-seconds to both endpoint hosts via
  :meth:`repro.cluster.cpu.Cpu.set_comm_load`.  This reproduces the
  Table 2 situation where a ~7 MB/s stream makes a host report a ~0.97
  load average while running no compute job.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from ..sim.events import Event

#: 100 Mbps Ethernet in bytes/second (the paper's interconnect).
ETHERNET_100MBPS = 12.5e6

#: Default one-way message latency in seconds.
DEFAULT_LATENCY = 1e-4

_EPS = 1e-9


class Flow:
    """One active flow between two hosts.

    ``remaining`` is ``inf`` for open-ended streams.  ``done`` is the
    completion event for finite transfers.
    """

    __slots__ = (
        "src", "dst", "remaining", "rate_cap", "rate", "label",
        "done", "bytes_moved", "closed",
    )

    def __init__(
        self,
        env: Any,
        src: str,
        dst: str,
        nbytes: float,
        rate_cap: float = math.inf,
        label: str = "",
    ):
        if src == dst:
            raise ValueError("flow endpoints must differ")
        if nbytes <= 0:
            raise ValueError("flow size must be positive")
        if rate_cap <= 0:
            raise ValueError("rate cap must be positive")
        self.src = src
        self.dst = dst
        self.remaining = float(nbytes)
        self.rate_cap = float(rate_cap)
        self.rate = 0.0
        self.label = label
        self.done: Event = Event(env)
        self.bytes_moved = 0.0
        self.closed = False

    @property
    def finite(self) -> bool:
        return math.isfinite(self.remaining)

    def __repr__(self) -> str:
        return (
            f"<Flow {self.src}->{self.dst} {self.label!r} "
            f"rate={self.rate:.0f}B/s remaining={self.remaining:.0f}>"
        )


class _HostPort:
    """NIC state for one host."""

    __slots__ = ("name", "tx_capacity", "rx_capacity", "bytes_tx",
                 "bytes_rx", "cpu", "up")

    def __init__(self, name: str, bandwidth: float, cpu: Any):
        self.name = name
        self.tx_capacity = float(bandwidth)
        self.rx_capacity = float(bandwidth)
        self.bytes_tx = 0.0
        self.bytes_rx = 0.0
        self.cpu = cpu  # may be None (e.g. a switch-attached service node)
        self.up = True


class HostDownError(ConnectionError):
    """A transfer touched a host that is down."""


class Network:
    """The cluster interconnect.

    Parameters
    ----------
    env:
        Simulation environment.
    default_bandwidth:
        Per-host full-duplex NIC bandwidth (bytes/s).
    latency:
        Fixed one-way startup latency added to each finite transfer.
    cpu_per_byte:
        CPU-seconds charged per byte at each endpoint (protocol
        processing); 0 disables the coupling.
    """

    def __init__(
        self,
        env: Any,
        default_bandwidth: float = ETHERNET_100MBPS,
        latency: float = DEFAULT_LATENCY,
        cpu_per_byte: float = 0.0,
    ):
        if default_bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.default_bandwidth = float(default_bandwidth)
        self.latency = float(latency)
        self.cpu_per_byte = float(cpu_per_byte)
        self._ports: Dict[str, _HostPort] = {}
        self._flows: list[Flow] = []
        #: Hosts whose CPU carried a nonzero comm load at the last
        #: recompute (the only ports a recompute must revisit).
        self._loaded: set = set()
        self._last_update = env.now
        self._wakeup: Optional[Event] = None
        self._wakeup_time = math.inf

    # -- topology -----------------------------------------------------------
    def add_host(
        self, name: str, cpu: Any = None, bandwidth: Optional[float] = None
    ) -> None:
        """Attach a host NIC. ``cpu`` enables protocol-processing coupling."""
        if name in self._ports:
            raise ValueError(f"host {name!r} already attached")
        self._ports[name] = _HostPort(
            name, bandwidth or self.default_bandwidth, cpu
        )

    def has_host(self, name: str) -> bool:
        return name in self._ports

    def set_host_up(self, name: str, up: bool) -> None:
        """Mark a host up/down. Going down kills all its active flows."""
        port = self._ports[name]
        if port.up == up:
            return
        port.up = up
        if not up:
            self._advance()
            victims = [
                f for f in self._flows if name in (f.src, f.dst)
            ]
            for flow in victims:
                self._flows.remove(flow)
                flow.closed = True
                if not flow.done.triggered:
                    flow.done.fail(HostDownError(name))
                    flow.done.defuse()
            self._recompute()

    def host_is_up(self, name: str) -> bool:
        return self._ports[name].up

    # -- byte accounting -----------------------------------------------
    def bytes_sent(self, name: str) -> float:
        self._advance()
        return self._ports[name].bytes_tx

    def bytes_received(self, name: str) -> float:
        self._advance()
        return self._ports[name].bytes_rx

    def active_flows(self) -> list:
        return list(self._flows)

    # -- traffic --------------------------------------------------------
    def transfer(
        self, src: str, dst: str, nbytes: float, label: str = ""
    ) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``.

        Returns an event that succeeds (with the byte count) once the
        last byte arrives; the transfer starts after the network
        latency.  Fails with :class:`HostDownError` if an endpoint is or
        goes down.
        """
        self._check_port(src)
        self._check_port(dst)
        result = Event(self.env)
        if nbytes <= 0:
            # Pure control signal: latency only.
            tick = self.env.timeout(self.latency, value=0.0)
            tick.callbacks.append(lambda ev: result.succeed(0.0))
            return result

        def _run():
            yield self.env.timeout(self.latency)
            if not (self._ports[src].up and self._ports[dst].up):
                raise HostDownError(src if not self._ports[src].up else dst)
            flow = self._open(src, dst, nbytes, label=label)
            yield flow.done
            return nbytes

        proc = self.env.process(_run(), name=f"xfer:{label or src + '->' + dst}")

        def _finish(ev):
            if ev.ok:
                result.succeed(ev.value)
            else:
                ev.defuse()
                result.fail(ev.value)

        proc.callbacks.append(_finish)
        return result

    def open_stream(
        self,
        src: str,
        dst: str,
        rate_cap: float = math.inf,
        label: str = "",
    ) -> Flow:
        """Start an open-ended stream (e.g. a background bulk flow)."""
        self._check_port(src)
        self._check_port(dst)
        if not (self._ports[src].up and self._ports[dst].up):
            raise HostDownError(src if not self._ports[src].up else dst)
        return self._open(src, dst, math.inf, rate_cap=rate_cap, label=label)

    def close_stream(self, flow: Flow) -> None:
        """Stop an open-ended stream."""
        if flow.closed:
            return
        self._advance()
        flow.closed = True
        if flow in self._flows:
            self._flows.remove(flow)
        if not flow.done.triggered:
            flow.done.succeed(flow.bytes_moved)
        self._recompute()

    # -- internals ------------------------------------------------------
    def _check_port(self, name: str) -> None:
        if name not in self._ports:
            raise KeyError(f"host {name!r} is not attached to the network")

    def _open(
        self,
        src: str,
        dst: str,
        nbytes: float,
        rate_cap: float = math.inf,
        label: str = "",
    ) -> Flow:
        self._advance()
        flow = Flow(self.env, src, dst, nbytes, rate_cap=rate_cap, label=label)
        self._flows.append(flow)
        self._recompute()
        return flow

    def _advance(self) -> None:
        """Account bytes moved since the last update at current rates."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        for flow in self._flows:
            moved = flow.rate * dt
            if flow.finite:
                moved = min(moved, flow.remaining)
                flow.remaining -= moved
            flow.bytes_moved += moved
            self._ports[flow.src].bytes_tx += moved
            self._ports[flow.dst].bytes_rx += moved

    def _recompute(self) -> None:
        """Progressive filling: assign max-min fair rates, then reschedule."""
        flows = self._flows
        for flow in flows:
            flow.rate = 0.0
        if flows:
            # Residual capacity of every NIC direction in use.
            residual: Dict[tuple, float] = {}
            users: Dict[tuple, list] = {}
            for flow in flows:
                for res in (("tx", flow.src), ("rx", flow.dst)):
                    if res not in residual:
                        port = self._ports[res[1]]
                        residual[res] = (
                            port.tx_capacity if res[0] == "tx"
                            else port.rx_capacity
                        )
                        users[res] = []
                    users[res].append(flow)

            unfrozen = set(flows)  # Flow objects hash by identity
            guard = 0
            while unfrozen:
                guard += 1
                if guard > 10 * len(flows) + 10:  # pragma: no cover
                    raise RuntimeError("progressive filling did not converge")
                # Largest equal increment every unfrozen flow can take.
                delta = math.inf
                for res, cap in residual.items():
                    n = sum(1 for f in users[res] if f in unfrozen)
                    if n:
                        delta = min(delta, cap / n)
                for flow in unfrozen:
                    delta = min(delta, flow.rate_cap - flow.rate)
                if delta is math.inf:  # pragma: no cover - defensive
                    break
                delta = max(delta, 0.0)
                # Apply the increment and charge resources.
                for flow in unfrozen:
                    flow.rate += delta
                for res in residual:
                    n = sum(1 for f in users[res] if f in unfrozen)
                    residual[res] -= delta * n
                # Freeze flows at capped rate or on a saturated resource.
                newly_frozen = set()
                for flow in unfrozen:
                    if flow.rate >= flow.rate_cap - _EPS:
                        newly_frozen.add(flow)
                        continue
                    for res in (("tx", flow.src), ("rx", flow.dst)):
                        if residual[res] <= _EPS * self.default_bandwidth:
                            newly_frozen.add(flow)
                            break
                if not newly_frozen:  # pragma: no cover - defensive
                    break
                unfrozen -= newly_frozen

        self._update_cpu_loads()
        self._schedule_next_completion()

    def _update_cpu_loads(self) -> None:
        if self.cpu_per_byte <= 0:
            return
        # Touch only flow endpoints plus hosts loaded last recompute
        # (their load may need zeroing) — O(flow endpoints), not
        # O(ports).  A mega-cluster's thousands of idle analytic hosts
        # stay untouched on every recompute; zero→zero writes they
        # would have received are no-ops in ``Cpu.set_comm_load``.
        totals: dict = {name: 0.0 for name in self._loaded}
        for flow in self._flows:
            totals[flow.src] = totals.get(flow.src, 0.0) + flow.rate
            totals[flow.dst] = totals.get(flow.dst, 0.0) + flow.rate
        loaded = set()
        for name, total in totals.items():
            cpu = self._ports[name].cpu
            if cpu is not None:
                cpu.set_comm_load(total * self.cpu_per_byte)
            if total > 0.0:
                loaded.add(name)
        self._loaded = loaded

    def _schedule_next_completion(self) -> None:
        delay = math.inf
        for flow in self._flows:
            if flow.finite and flow.rate > 0:
                if self._finished(flow):
                    delay = 0.0
                else:
                    delay = min(delay, flow.remaining / flow.rate)
        if delay is math.inf:
            self._wakeup = None
            self._wakeup_time = math.inf
            return
        when = self.env.now + delay
        if (
            self._wakeup is not None
            and not self._wakeup.processed
            and self._wakeup_time <= when + _EPS
        ):
            return
        wakeup = self.env.timeout(max(delay, 0.0))
        wakeup.callbacks.append(self._on_wakeup)
        self._wakeup = wakeup
        self._wakeup_time = when

    def _finished(self, flow: Flow) -> bool:
        """Done when less than a nanosecond of service remains.

        Timestamps around t≈10³ s have float ulps near 10⁻¹³ s; at
        10⁷ B/s that leaves micro-byte residues after an 'exact'
        completion — tolerating up to 1 ns × rate of residual bytes
        absorbs them without ever dropping a meaningful byte.
        """
        tolerance = 1e-9 * max(flow.rate, self.default_bandwidth * 1e-3)
        return flow.finite and flow.remaining <= tolerance

    def _on_wakeup(self, event: Event) -> None:
        if event is not self._wakeup:
            return  # stale timer
        self._advance()
        finished = [f for f in self._flows if self._finished(f)]
        for flow in finished:
            self._flows.remove(flow)
            flow.closed = True
            flow.remaining = 0.0
            flow.done.succeed(flow.bytes_moved)
        self._recompute()
