"""The sweep runner: plan cells, fan out, collect, cache.

The runner's contract is *parallel ≡ serial*: cells are pure functions
of ``(experiment, config, seed)`` with content-derived seeds, results
are collected in plan order (not completion order), and the cache is
read and written only by the coordinating process.  ``jobs=1`` runs
inline; ``jobs>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .cache import ResultCache, cache_key
from .experiments import CELL_AXES, CELLS, run_cell
from .seeds import derive_seed


@dataclass(frozen=True)
class SweepCell:
    """One planned unit of work."""

    experiment: str
    replica: int
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return cache_key(self.experiment, self.config, self.seed)

    def label(self) -> str:
        return f"{self.experiment}[{self.replica}] seed={self.seed}"


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in plan order."""

    cells: List[SweepCell]
    summaries: List[Dict[str, Any]]
    #: Which cells were served from cache (parallel to ``cells``).
    cached: List[bool]

    @property
    def executed(self) -> int:
        return sum(1 for hit in self.cached if not hit)

    @property
    def cache_hits(self) -> int:
        return sum(1 for hit in self.cached if hit)

    def as_payload(self) -> Dict[str, Any]:
        """JSON document for ``repro sweep --out``."""
        return {
            "cells": [
                {
                    "experiment": cell.experiment,
                    "replica": cell.replica,
                    "seed": cell.seed,
                    "config": cell.config,
                    "key": cell.key,
                    "cached": hit,
                    "summary": summary,
                }
                for cell, hit, summary in zip(
                    self.cells, self.cached, self.summaries
                )
            ],
        }


def plan_sweep(
    experiments: Sequence[str],
    replicas: int = 1,
    base_seed: int = 0,
    config: Optional[Dict[str, Any]] = None,
) -> List[SweepCell]:
    """Expand experiment names × replica indices into cells.

    Seeds come from :func:`derive_seed`, so the plan is a pure function
    of its arguments — two users with the same spec get the same cells.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    unknown = sorted(set(experiments) - set(CELLS))
    if unknown:
        raise ValueError(
            f"unknown experiments {unknown}; choose from {sorted(CELLS)}"
        )
    config = dict(config or {})
    # Overrides must be axes some planned cell actually reads —
    # otherwise a typo (``host=256``) silently pollutes every cache
    # key while changing nothing.
    valid_axes: set = set()
    for experiment in set(experiments):
        valid_axes |= CELL_AXES.get(experiment, frozenset())
    bad_axes = sorted(set(config) - valid_axes)
    if bad_axes:
        raise ValueError(
            f"config keys {bad_axes} are not read by "
            f"{sorted(set(experiments))}; valid axes: "
            f"{sorted(valid_axes)}"
        )
    return [
        SweepCell(experiment=experiment, replica=replica,
                  seed=derive_seed(base_seed, experiment, replica),
                  config=config)
        for experiment in experiments
        for replica in range(replicas)
    ]


def _execute(cell: SweepCell) -> Dict[str, Any]:
    """Worker-side entry point (module-level: picklable)."""
    return run_cell(cell.experiment, cell.config, cell.seed)


def run_sweep(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SweepOutcome:
    """Run (or fetch) every cell; results come back in plan order."""
    say = log or (lambda _msg: None)
    summaries: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    cached = [False] * len(cells)

    pending: List[int] = []
    for i, cell in enumerate(cells):
        entry = cache.get(cell.key) if cache is not None else None
        if entry is not None:
            summaries[i] = entry["summary"]
            cached[i] = True
            say(f"cached   {cell.label()}")
        else:
            pending.append(i)

    if pending and jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {i: pool.submit(_execute, cells[i])
                       for i in pending}
            for i in pending:  # plan order, not completion order
                summaries[i] = futures[i].result()
                say(f"ran      {cells[i].label()}")
    else:
        for i in pending:
            summaries[i] = _execute(cells[i])
            say(f"ran      {cells[i].label()}")

    if cache is not None:
        for i in pending:
            cell = cells[i]
            cache.put(cell.key, {
                "experiment": cell.experiment,
                "config": cell.config,
                "seed": cell.seed,
                "summary": summaries[i],
            })

    return SweepOutcome(cells=list(cells), summaries=summaries,
                       cached=cached)
