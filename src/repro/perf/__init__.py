"""Parallel sweep runner with deterministic seeding and result caching.

``repro sweep`` fans independent experiment replicas across a process
pool.  Three guarantees make the fan-out safe to use for paper-grade
numbers:

* **determinism** — every cell's seed is derived from the base seed by
  a content hash (:func:`repro.perf.seeds.derive_seed`), so the same
  sweep specification always produces the same per-cell seeds, in any
  execution order, serial or parallel;
* **equivalence** — a cell is a pure function of ``(experiment,
  config, seed)``; running it in a worker process yields the same
  summary as running it inline;
* **caching** — finished cells are stored in a content-addressed JSON
  cache (:class:`repro.perf.cache.ResultCache`) keyed on the same
  triple, so a warm re-run skips completed cells entirely.

See ``docs/performance.md`` for usage and cache semantics.
"""

from .cache import ResultCache, cache_key
from .experiments import CELLS, run_cell
from .seeds import derive_seed
from .sweep import SweepCell, SweepOutcome, plan_sweep, run_sweep

__all__ = [
    "CELLS",
    "ResultCache",
    "SweepCell",
    "SweepOutcome",
    "cache_key",
    "derive_seed",
    "plan_sweep",
    "run_cell",
    "run_sweep",
]
