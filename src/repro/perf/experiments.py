"""Sweep cells: experiment runners returning JSON-safe summaries.

Each cell is a **pure function of ``(config, seed)``** — no ambient
state, no wall-clock, no filesystem — so the sweep runner may execute
it in any worker process (or skip it on a cache hit) and still produce
exactly the result of a serial run.  Summaries hold scalars plus the
``points()`` form of the figure series, so plots can be rebuilt from a
cached cell with :meth:`repro.metrics.TimeSeries.from_points` without
re-simulating.
"""

from __future__ import annotations

from typing import Any, Callable, Dict


def _points(series) -> list:
    return [list(p) for p in series.points()]


def cell_fig5(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Figure 5 — rescheduler load/CPU overhead (§5.1)."""
    from ..analysis import run_overhead_experiment

    r = run_overhead_experiment(
        duration=config.get("duration", 3600.0),
        seed=seed,
        interval=config.get("interval", 10.0),
        cycle_cost=config.get("cycle_cost"),
        settle=config.get("settle", 900.0),
        hosts=config.get("hosts", 2),
    )
    return {
        "load1_without": r.load1_without,
        "load1_with": r.load1_with,
        "load1_overhead": r.load1_overhead,
        "load5_overhead": r.load5_overhead,
        "cpu_overhead": r.cpu_overhead,
        "series": {
            "load1_without": _points(r.without_rs.load1),
            "load1_with": _points(r.with_rs.load1),
        },
    }


def cell_fig6(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Figure 6 — rescheduler communication overhead (§5.1)."""
    from ..analysis import run_overhead_experiment

    r = run_overhead_experiment(
        duration=config.get("duration", 3600.0),
        seed=seed,
        interval=config.get("interval", 10.0),
        cycle_cost=config.get("cycle_cost"),
        settle=config.get("settle", 900.0),
        hosts=config.get("hosts", 2),
    )
    return {
        "send_kbs_without": r.send_kbs_without,
        "send_kbs_with": r.send_kbs_with,
        "recv_kbs_without": r.recv_kbs_without,
        "recv_kbs_with": r.recv_kbs_with,
        "comm_overhead": r.comm_overhead,
        "series": {
            "send_without": _points(r.without_rs.send_kbs),
            "send_with": _points(r.with_rs.send_kbs),
        },
    }


def _efficiency(config: Dict[str, Any], seed: int):
    from ..analysis import run_efficiency_experiment

    kwargs = {
        key: config[key]
        for key in (
            "app_start", "load_at", "duration", "hogs", "sustain",
            "levels", "trees", "node_cost", "serialize_rate", "chunks",
            "resume_fraction",
        )
        if key in config
    }
    return run_efficiency_experiment(seed=seed, **kwargs)


def cell_fig7(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Figure 7 — migration phases, CPU view (§5.2)."""
    r = _efficiency(config, seed)
    summary: Dict[str, Any] = dict(r.phase_summary())
    summary["checksum_ok"] = r.checksum_ok
    summary["succeeded"] = r.record.succeeded
    summary["completed_at"] = r.record.completed_at
    summary["series"] = {
        "cpu_source": _points(r.cpu_source),
        "cpu_dest": _points(r.cpu_dest),
    }
    return summary


def cell_fig8(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Figure 8 — migration state-transfer burst, network view (§5.2)."""
    r = _efficiency(config, seed)
    rec = r.record
    return {
        "drain_s": rec.drain_seconds,
        "memory_mb": rec.memory_bytes / 2**20,
        "checksum_ok": r.checksum_ok,
        "succeeded": rec.succeeded,
        "ordered_at": rec.ordered_at,
        "resumed_at": rec.resumed_at,
        "completed_at": rec.completed_at,
        "app_started_at": r.app_started_at,
        "load_injected_at": r.load_injected_at,
        "series": {
            "send_source": _points(r.send_source),
            "recv_dest": _points(r.recv_dest),
        },
    }


def cell_table2(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Table 2 — policy comparison (§5.3)."""
    from ..analysis import run_table2

    kwargs = {
        key: config[key]
        for key in ("params", "load_at", "hogs", "sustain", "bulk_rate",
                    "ws3_load", "max_duration")
        if key in config
    }
    results = run_table2(seed=seed, **kwargs)
    return {
        f"policy{i}": {
            "total_s": res.total_seconds,
            "migrated_to": res.migrated_to,
            "source_s": res.source_seconds,
            "dest_s": res.dest_seconds,
            "migration_s": res.migration_seconds,
            "checksum_ok": res.checksum_ok,
        }
        for i, res in results.items()
    }


def cell_malleability(config: Dict[str, Any],
                      seed: int) -> Dict[str, Any]:
    """Malleability — rigid vs N:M reshape (docs/malleability.md)."""
    from ..analysis import run_malleability_experiment

    kwargs = {
        key: config[key]
        for key in (
            "params", "hosts", "load_at", "hogs", "sustain", "grow_at",
            "shrink_at", "min_efficiency", "max_duration",
        )
        if key in config
    }
    r = run_malleability_experiment(seed=seed, **kwargs)
    return {
        "rigid_s": r.rigid.completed_at,
        "malleable_s": r.malleable.completed_at,
        "speedup": r.speedup,
        "pi_ok": r.rigid.pi_ok and r.malleable.pi_ok,
        "peak_world": r.malleable.peak_world,
        "migrations_rigid": r.rigid.migrations,
        "reshapes": r.malleable.reshapes,
    }


#: Cell name → runner.  Keys are the ``repro sweep`` experiment names.
CELLS: Dict[str, Callable[[Dict[str, Any], int], Dict[str, Any]]] = {
    "fig5": cell_fig5,
    "fig6": cell_fig6,
    "fig7": cell_fig7,
    "fig8": cell_fig8,
    "table2": cell_table2,
    "malleability": cell_malleability,
}

#: The config keys each cell actually reads — the valid ``--set`` axes.
#: ``plan_sweep`` validates overrides against the union for the planned
#: experiments, so a typo'd or mis-plumbed axis fails at plan time
#: instead of silently riding along in every cache key.
_EFFICIENCY_AXES = frozenset({
    "app_start", "load_at", "duration", "hogs", "sustain", "levels",
    "trees", "node_cost", "serialize_rate", "chunks", "resume_fraction",
})
CELL_AXES: Dict[str, frozenset] = {
    "fig5": frozenset({"duration", "interval", "cycle_cost", "settle",
                       "hosts"}),
    "fig6": frozenset({"duration", "interval", "cycle_cost", "settle",
                       "hosts"}),
    "fig7": _EFFICIENCY_AXES,
    "fig8": _EFFICIENCY_AXES,
    "table2": frozenset({"params", "load_at", "hogs", "sustain",
                         "bulk_rate", "ws3_load", "max_duration"}),
    "malleability": frozenset({
        "params", "hosts", "load_at", "hogs", "sustain", "grow_at",
        "shrink_at", "min_efficiency", "max_duration",
    }),
}


def run_cell(
    experiment: str, config: Dict[str, Any], seed: int
) -> Dict[str, Any]:
    """Run one cell by name.  Module-level (picklable), so it is the
    function the process pool ships to workers."""
    try:
        cell = CELLS[experiment]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {sorted(CELLS)}"
        ) from None
    return cell(dict(config), seed)
