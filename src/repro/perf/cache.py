"""Content-addressed JSON result cache for sweep cells.

A cell's identity is the SHA-256 of the canonical JSON encoding of
``{experiment, config, seed, version}``; its summary is stored as one
pretty-printed JSON file named after that key.  Changing any config
value (or bumping :data:`CACHE_VERSION` when summaries change shape)
changes the key, so stale entries are never *read* — they are merely
left behind, and ``repro sweep --no-cache`` or deleting the directory
clears them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

#: Bump when the summary schema of any cell changes incompatibly.
CACHE_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Stable encoding: sorted keys, no incidental whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(experiment: str, config: Dict[str, Any], seed: int) -> str:
    """Content hash identifying one sweep cell."""
    material = canonical_json({
        "experiment": experiment,
        "config": config,
        "seed": seed,
        "version": CACHE_VERSION,
    })
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` cell summaries with hit/miss stats."""

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``key``, or None (counted as a miss)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> str:
        """Store ``entry``; atomic rename so readers never see a
        half-written file."""
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self.writes += 1
        return path

    def contains(self, key: str) -> bool:
        """Presence check that does not touch the hit/miss counters
        (used by ``repro sweep --dry-run``)."""
        return os.path.exists(self._path(key))
