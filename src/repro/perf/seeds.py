"""Deterministic per-cell seed derivation.

Replica seeds must not depend on execution order (or the parallel
sweep could never match the serial one), must not collide between
experiments (or "replica 3 of fig5" and "replica 3 of fig7" would
share randomness), and must be reproducible from the sweep spec alone.
Hashing ``base_seed/experiment/replica`` through SHA-256 gives all
three properties without any shared-state RNG.
"""

from __future__ import annotations

import hashlib

#: Seeds fit comfortably in a non-negative 63-bit int, which every
#: consumer (``random.Random``, numpy generators) accepts.
_SEED_BITS = 63


def derive_seed(base_seed: int, experiment: str, replica: int) -> int:
    """Derive the seed for one sweep cell.

    ``derive_seed(s, e, r)`` is a pure function — the sweep runner and
    any external tooling (e.g. a script re-checking one cell) agree on
    the seed without coordination.
    """
    if replica < 0:
        raise ValueError("replica index must be non-negative")
    material = f"{base_seed}/{experiment}/{replica}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") >> (64 - _SEED_BITS)
