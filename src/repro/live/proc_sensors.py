"""Real system sensors backed by /proc (Linux).

The paper's monitor "gather[s] dynamic information ... through the use
of scripts (such as UNIX shell-scripts)" wrapping ``vmstat``,
``prstat`` and ``ps`` (§3.1).  This module is the live-mode
counterpart of the simulated script engine: the same quantities —
load averages, CPU idle time, memory, network byte rates, process
counts — read from procfs.  Each sensor degrades gracefully (returns
``None``) on platforms without the file.
"""

from __future__ import annotations

import os
import time
from typing import Optional


def load_averages() -> Optional[tuple]:
    """(1-min, 5-min, 15-min) load averages."""
    try:
        with open("/proc/loadavg", "r", encoding="ascii") as fh:
            parts = fh.read().split()
        return float(parts[0]), float(parts[1]), float(parts[2])
    except (OSError, IndexError, ValueError):
        try:
            return os.getloadavg()
        except (OSError, AttributeError):
            return None


def process_count() -> Optional[int]:
    """Number of processes (numeric directories under /proc)."""
    try:
        return sum(1 for name in os.listdir("/proc") if name.isdigit())
    except OSError:
        return None


def memory_info() -> Optional[dict]:
    """MemTotal / MemAvailable / SwapTotal / SwapFree in bytes."""
    wanted = {"MemTotal", "MemAvailable", "SwapTotal", "SwapFree"}
    out = {}
    try:
        with open("/proc/meminfo", "r", encoding="ascii") as fh:
            for line in fh:
                key, _, rest = line.partition(":")
                if key in wanted:
                    out[key] = int(rest.split()[0]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    if "MemTotal" not in out:
        return None
    out["mem_avail_pct"] = (
        100.0 * out.get("MemAvailable", 0) / out["MemTotal"]
    )
    return out


def _read_cpu_times() -> Optional[tuple]:
    """(idle_ticks, total_ticks) from the aggregate cpu line."""
    try:
        with open("/proc/stat", "r", encoding="ascii") as fh:
            line = fh.readline()
        fields = [int(x) for x in line.split()[1:]]
        idle = fields[3] + (fields[4] if len(fields) > 4 else 0)
        return idle, sum(fields)
    except (OSError, ValueError, IndexError):
        return None


class CpuIdleSampler:
    """Windowed CPU idle percentage (differences /proc/stat reads)."""

    def __init__(self):
        self._last = _read_cpu_times()

    def sample(self) -> Optional[float]:
        """Idle % since the previous call (None on first/unsupported)."""
        current = _read_cpu_times()
        if current is None or self._last is None:
            self._last = current
            return None
        d_idle = current[0] - self._last[0]
        d_total = current[1] - self._last[1]
        self._last = current
        if d_total <= 0:
            return None
        return 100.0 * d_idle / d_total


def net_bytes() -> Optional[tuple]:
    """(rx_bytes, tx_bytes) summed over non-loopback interfaces."""
    try:
        rx = tx = 0
        with open("/proc/net/dev", "r", encoding="ascii") as fh:
            for line in fh.readlines()[2:]:
                name, _, rest = line.partition(":")
                if name.strip() == "lo":
                    continue
                fields = rest.split()
                rx += int(fields[0])
                tx += int(fields[8])
        return rx, tx
    except (OSError, ValueError, IndexError):
        return None


class NetRateSampler:
    """Windowed KB/s send/receive rates."""

    def __init__(self):
        self._last = (time.monotonic(), net_bytes())

    def sample(self) -> Optional[dict]:
        now = time.monotonic()
        current = net_bytes()
        last_t, last_v = self._last
        self._last = (now, current)
        if current is None or last_v is None or now <= last_t:
            return None
        dt = now - last_t
        return {
            "recv_kbs": (current[0] - last_v[0]) / dt / 1024.0,
            "send_kbs": (current[1] - last_v[1]) / dt / 1024.0,
        }


def snapshot(cpu_sampler: Optional[CpuIdleSampler] = None,
             net_sampler: Optional[NetRateSampler] = None) -> dict:
    """Best-effort metric snapshot in the simulated sensors' vocabulary."""
    out: dict = {}
    loads = load_averages()
    if loads:
        out["loadavg1"], out["loadavg5"], out["loadavg15"] = loads
    procs = process_count()
    if procs is not None:
        out["proc_count"] = float(procs)
    mem = memory_info()
    if mem:
        out["mem_avail_pct"] = mem["mem_avail_pct"]
    if cpu_sampler is not None:
        idle = cpu_sampler.sample()
        if idle is not None:
            out["cpu_idle_pct"] = idle
            out["cpu_util"] = 1.0 - idle / 100.0
    if net_sampler is not None:
        rates = net_sampler.sample()
        if rates:
            out.update(rates)
            out["comm_mbs"] = (
                (rates["send_kbs"] + rates["recv_kbs"]) / 1024.0
            )
    return out
