"""Real TCP transport for live mode.

"We combine a custom XML based protocol with TCP/IP sockets to form
the communication subsystem of the rescheduler" (paper §3.3) — here
over genuine localhost sockets.  The same XML messages as the
simulation (`repro.protocol.messages`), framed as 1-byte frame kind +
4-byte big-endian length + payload.  Kind ``M`` carries a protocol
message; kind ``S`` carries a migration state blob (JSON header +
pickle), the live analog of HPCM's state transfer.
"""

from __future__ import annotations

import json
import queue
import socket
import struct
import threading
import time
from typing import Any, Optional, Tuple

from ..protocol import messages

FRAME_MESSAGE = b"M"
FRAME_STATE = b"S"

#: Connect timeout (seconds) when none is configured.
DEFAULT_CONNECT_TIMEOUT = 5.0
#: Re-attempts after a failed connect (total tries = retries + 1).
DEFAULT_CONNECT_RETRIES = 2
#: First backoff delay; doubles per retry (0.05 s, 0.1 s, 0.2 s, ...).
DEFAULT_RETRY_BACKOFF = 0.05

_HEADER = struct.Struct(">cI")


def _send_frame(sock: socket.socket, kind: bytes, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(kind, len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


def _recv_frame(sock: socket.socket) -> Optional[Tuple[bytes, bytes]]:
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    kind, length = _HEADER.unpack(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return kind, payload


class LiveEndpoint:
    """A listening TCP endpoint with a decoded-message inbox.

    Incoming protocol messages arrive as ``("msg", (message, sender,
    timestamp))`` items; state blobs as ``("state", (header_dict,
    blob_bytes))``.
    """

    def __init__(
        self,
        name: str,
        host: str = "127.0.0.1",
        port: int = 0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    ):
        if connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if connect_retries < 0:
            raise ValueError("connect_retries must be >= 0")
        self.name = name
        self.connect_timeout = float(connect_timeout)
        self.connect_retries = int(connect_retries)
        self.retry_backoff = float(retry_backoff)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self.inbox: "queue.Queue" = queue.Queue()
        self._closing = threading.Event()
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"endpoint:{name}", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- receiving ------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn: socket.socket) -> None:
        with conn:
            while True:
                frame = _recv_frame(conn)
                if frame is None:
                    return
                kind, payload = frame
                if kind == FRAME_MESSAGE:
                    try:
                        decoded = messages.decode(payload)
                    except messages.ProtocolError:
                        continue  # drop malformed traffic
                    self.inbox.put(("msg", decoded))
                elif kind == FRAME_STATE:
                    header_len = struct.unpack(">I", payload[:4])[0]
                    header = json.loads(
                        payload[4:4 + header_len].decode("utf-8")
                    )
                    blob = payload[4 + header_len:]
                    self.inbox.put(("state", (header, blob)))

    def recv(self, timeout: Optional[float] = None):
        """Next inbox item or None on timeout."""
        try:
            return self.inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    # -- sending --------------------------------------------------------
    @staticmethod
    def _parse(address: str) -> Tuple[str, int]:
        """``[name@]host:port`` → ``(host, port)``.

        Hierarchical registries label themselves ``name@host:port`` so a
        parent can recognize registry records by the ``@``; routing only
        needs the socket part.
        """
        address = address.rpartition("@")[2]
        host, _, port = address.rpartition(":")
        return host, int(port)

    def send_message(self, address: str, msg: Any, timestamp: float) -> bool:
        """Fire-and-forget protocol message; False if unreachable."""
        data = messages.encode(msg, sender=self.address,
                               timestamp=timestamp)
        return self._send(address, FRAME_MESSAGE, data)

    def send_state(self, address: str, header: dict, blob: bytes) -> bool:
        """Ship a migration state blob."""
        head = json.dumps(header).encode("utf-8")
        payload = struct.pack(">I", len(head)) + head + blob
        return self._send(address, FRAME_STATE, payload)

    def _send(self, address: str, kind: bytes, payload: bytes) -> bool:
        """Connect (with bounded retry + exponential backoff) and ship
        one frame; False once every attempt failed."""
        try:
            target = self._parse(address)
        except ValueError:
            return False  # unroutable name, e.g. a bare logical host
        delay = self.retry_backoff
        for attempt in range(self.connect_retries + 1):
            try:
                with socket.create_connection(
                    target, timeout=self.connect_timeout
                ) as sock:
                    _send_frame(sock, kind, payload)
                return True
            except OSError:
                if attempt == self.connect_retries or self._closing.is_set():
                    return False
                time.sleep(delay)
                delay *= 2.0
        return False

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
