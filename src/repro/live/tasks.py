"""Checkpointable task types for live mode.

HPCM's precompiler made C/Fortran programs collectible at poll-points
so that "the execution, memory, and communication states" could move
at "the nearest poll-point" (paper §3); a live task is the Python
analog — a *named, importable* step function over a picklable state
dict.  Migration ships the type name plus the pickled state, and the
destination resolves the name back to code (HPCM shipped binaries per
architecture; shipping code identity + data plays that role here).

``step(state) -> bool`` performs one chunk of real computation and
returns True while unfinished.  Between steps (poll-points) the state
dict is the complete truth.
"""

from __future__ import annotations

import math
from typing import Callable, Dict


def sqrt_sum_step(state: dict) -> bool:
    """Σ √i in chunks — compute-bound, trivially verifiable."""
    i = state["i"]
    end = min(i + state["chunk"], state["n"])
    acc = state["acc"]
    while i < end:
        acc += math.sqrt(i)
        i += 1
    state["i"] = i
    state["acc"] = acc
    return i < state["n"]


def sqrt_sum_state(n: int = 2_000_000, chunk: int = 100_000) -> dict:
    return {"i": 0, "n": int(n), "chunk": int(chunk), "acc": 0.0}


def sqrt_sum_expected(n: int) -> float:
    return sum(math.sqrt(i) for i in range(n))


def collatz_census_step(state: dict) -> bool:
    """Longest Collatz chain below n — another compute-bound task."""
    i = state["i"]
    end = min(i + state["chunk"], state["n"])
    best, best_n = state["best"], state["best_n"]
    while i < end:
        length, x = 0, i
        while x > 1:
            x = x // 2 if x % 2 == 0 else 3 * x + 1
            length += 1
        if length > best:
            best, best_n = length, i
        i += 1
    state.update(i=i, best=best, best_n=best_n)
    return i < state["n"]


def collatz_census_state(n: int = 50_000, chunk: int = 5_000) -> dict:
    return {"i": 1, "n": int(n), "chunk": int(chunk),
            "best": 0, "best_n": 1}


#: The live runtime resolves task types through this registry.
TASK_TYPES: Dict[str, Callable[[dict], bool]] = {
    "sqrt_sum": sqrt_sum_step,
    "collatz_census": collatz_census_step,
}
