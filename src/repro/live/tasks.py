"""Checkpointable task types for live mode.

HPCM's precompiler made C/Fortran programs collectible at poll-points
so that "the execution, memory, and communication states" could move
at "the nearest poll-point" (paper §3); a live task is the Python
analog — a *named, importable* step function over a picklable state
dict.  Migration ships the type name plus the pickled state, and the
destination resolves the name back to code (HPCM shipped binaries per
architecture; shipping code identity + data plays that role here).

``step(state) -> bool`` performs one chunk of real computation and
returns True while unfinished.  Between steps (poll-points) the state
dict is the complete truth.

Malleability (docs/malleability.md) extends the contract with two
optional registries mirroring the sim's ``repartition`` hook:

* ``TASK_SPLITTERS[type](state, k)`` deals the remaining work into
  ``k`` complete shard states (an ``ExpandCommand`` keeps shard 0
  local and ships the rest);
* ``TASK_MERGERS[type](state, shard)`` folds a retiring shard into a
  running peer (a ``ShrinkCommand``'s merge context).

Thread-safety rule: a merger runs on the *receiving node's* serve
thread while the peer's worker thread is mid-step, so it may only
append the shard to ``state["queue"]`` — never touch keys the step
mutates.  The step function adopts queued shards (folding their
accumulators) at its own range boundaries, where it owns the state.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List


def _adopt_next_shard(state: dict, fold: Callable[[dict, dict], None]) -> bool:
    """Pop one queued shard into ``state`` at a range boundary."""
    queue = state.get("queue")
    if not queue:
        return False
    shard = queue.pop(0)
    fold(state, shard)
    state["i"], state["n"] = shard["i"], shard["n"]
    queue.extend(shard.get("queue") or [])
    return state["i"] < state["n"] or bool(queue)


def _split_range_state(state: dict, k: int, zero: dict) -> List[dict]:
    """Deal the remaining ``[i, n)`` range into ``k`` shard states.

    Shard 0 keeps the accumulators; the rest start from ``zero`` so
    the fold at merge/finish time counts every contribution once.
    Already-queued shards ride along round-robin.
    """
    lo, hi = state["i"], state["n"]
    pending = list(state.get("queue") or [])
    span = max(0, hi - lo)
    base, extra = divmod(span, k)
    shards, start = [], lo
    for j in range(k):
        stop = start + base + (1 if j < extra else 0)
        shard = dict(state)
        shard["i"], shard["n"] = start, stop
        shard["queue"] = []
        if j > 0:
            shard.update(zero)
        shards.append(shard)
        start = stop
    for j, queued in enumerate(pending):
        shards[j % k]["queue"].append(queued)
    return shards


def _queue_merge(state: dict, shard: dict) -> None:
    """Append a retiring shard for adoption at the next poll-point.

    The only merge operation safe against the owner's concurrent
    step: a single GIL-atomic list append on a key the step never
    reassigns.
    """
    state.setdefault("queue", []).append(shard)


def sqrt_sum_step(state: dict) -> bool:
    """Σ √i in chunks — compute-bound, trivially verifiable."""
    i = state["i"]
    end = min(i + state["chunk"], state["n"])
    acc = state["acc"]
    while i < end:
        acc += math.sqrt(i)
        i += 1
    state["i"] = i
    state["acc"] = acc
    if i < state["n"]:
        return True
    return _adopt_next_shard(state, _fold_sqrt_sum)


def _fold_sqrt_sum(state: dict, shard: dict) -> None:
    state["acc"] += shard["acc"]


def sqrt_sum_split(state: dict, k: int) -> List[dict]:
    return _split_range_state(state, k, {"acc": 0.0})


def sqrt_sum_state(n: int = 2_000_000, chunk: int = 100_000) -> dict:
    return {"i": 0, "n": int(n), "chunk": int(chunk), "acc": 0.0}


def sqrt_sum_expected(n: int) -> float:
    return sum(math.sqrt(i) for i in range(n))


def collatz_census_step(state: dict) -> bool:
    """Longest Collatz chain below n — another compute-bound task."""
    i = state["i"]
    end = min(i + state["chunk"], state["n"])
    best, best_n = state["best"], state["best_n"]
    while i < end:
        length, x = 0, i
        while x > 1:
            x = x // 2 if x % 2 == 0 else 3 * x + 1
            length += 1
        if length > best:
            best, best_n = length, i
        i += 1
    state.update(i=i, best=best, best_n=best_n)
    if i < state["n"]:
        return True
    return _adopt_next_shard(state, _fold_collatz)


def _fold_collatz(state: dict, shard: dict) -> None:
    if shard["best"] > state["best"]:
        state["best"], state["best_n"] = shard["best"], shard["best_n"]


def collatz_census_split(state: dict, k: int) -> List[dict]:
    return _split_range_state(state, k, {"best": 0, "best_n": 1})


def collatz_census_state(n: int = 50_000, chunk: int = 5_000) -> dict:
    return {"i": 1, "n": int(n), "chunk": int(chunk),
            "best": 0, "best_n": 1}


#: The live runtime resolves task types through this registry.
TASK_TYPES: Dict[str, Callable[[dict], bool]] = {
    "sqrt_sum": sqrt_sum_step,
    "collatz_census": collatz_census_step,
}

#: Types an ExpandCommand can shard (state → k shard states).
TASK_SPLITTERS: Dict[str, Callable[[dict, int], List[dict]]] = {
    "sqrt_sum": sqrt_sum_split,
    "collatz_census": collatz_census_split,
}

#: Types a ShrinkCommand shard can fold into (peer state, shard).
TASK_MERGERS: Dict[str, Callable[[dict, dict], None]] = {
    "sqrt_sum": _queue_merge,
    "collatz_census": _queue_merge,
}
