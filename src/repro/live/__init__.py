"""Live mode: the rescheduler on real threads, sockets and /proc.

Demonstrates that the design is not simulation-bound: the same XML
protocol, soft-state table, victim selection and policies run as real
threads exchanging frames over localhost TCP, with /proc-backed
sensors, rescheduling genuinely-computing tasks whose pickled state
moves over the wire.
"""

from .node import LiveNode, LiveTask
from .proc_sensors import (
    CpuIdleSampler,
    NetRateSampler,
    load_averages,
    memory_info,
    net_bytes,
    process_count,
    snapshot,
)
from .registry import LiveDecision, LiveRegistry
from .tasks import (
    TASK_TYPES,
    collatz_census_state,
    sqrt_sum_expected,
    sqrt_sum_state,
)
from .transport import LiveEndpoint

__all__ = [
    "CpuIdleSampler",
    "LiveDecision",
    "LiveEndpoint",
    "LiveNode",
    "LiveRegistry",
    "LiveTask",
    "NetRateSampler",
    "TASK_TYPES",
    "collatz_census_state",
    "load_averages",
    "memory_info",
    "net_bytes",
    "process_count",
    "snapshot",
    "sqrt_sum_expected",
    "sqrt_sum_state",
]
