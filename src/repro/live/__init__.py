"""Live mode: the rescheduler on real threads, sockets and /proc.

The paper's system ran on real workstations — "a cluster of SUN
workstations" with entities talking over "a custom XML based protocol
with TCP/IP sockets" (§3.3, §5).  Live mode demonstrates the same
thing of this reproduction: the design is not simulation-bound.  The
same XML protocol, soft-state table (§3.2), victim selection and
policies (§5.3) run as real threads exchanging frames over localhost
TCP, with /proc-backed sensors standing in for the monitoring scripts
of §3.1, rescheduling genuinely-computing tasks whose pickled state
moves over the wire.
"""

from .node import LiveNode, LiveTask, default_ruleset
from .proc_sensors import (
    CpuIdleSampler,
    NetRateSampler,
    load_averages,
    memory_info,
    net_bytes,
    process_count,
    snapshot,
)
from .registry import LiveDecision, LiveRegistry
from .tasks import (
    TASK_TYPES,
    collatz_census_state,
    sqrt_sum_expected,
    sqrt_sum_state,
)
from .transport import LiveEndpoint

__all__ = [
    "CpuIdleSampler",
    "LiveDecision",
    "LiveEndpoint",
    "LiveNode",
    "LiveRegistry",
    "LiveTask",
    "NetRateSampler",
    "TASK_TYPES",
    "collatz_census_state",
    "default_ruleset",
    "load_averages",
    "memory_info",
    "net_bytes",
    "process_count",
    "snapshot",
    "sqrt_sum_expected",
    "sqrt_sum_state",
]
