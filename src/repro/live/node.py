"""A live node: worker + monitor + commander in one real process.

"A monitor and a commander entity reside on each host" (paper §3);
a :class:`LiveNode` plays both roles for one real OS process.  It owns
a TCP endpoint, executes checkpointable tasks on worker threads, and
acts on incoming ``MigrateCommand``s by checkpointing the task at its
next poll-point and shipping the pickled state to the destination node
over a real socket (HPCM role, §3.3).

Both entity roles run the *same* cores as the simulation.  The monitor
role is a :class:`~repro.monitor.core.MonitorCore` classifying through
the full rule engine — simple and complex rules, policy
trigger/guard sharpening, the sustain warm-up, per-state monitoring
intervals — over a :class:`~repro.monitor.scripts.SnapshotScriptEngine`
whose snapshot combines genuine ``/proc`` readings with the node's
controllable demo load.  The commander role is a
:class:`~repro.commander.core.CommanderCore` whose delivery mechanism
is the paper's user-defined signal, here a flag the worker honours at
its next poll-point.

Load is the node's *task occupancy* plus any injected synthetic load —
deterministic for demos and tests — while genuine ``/proc`` metrics
ride along in the status updates for observability.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..commander.core import CommanderCore
from ..entity.clock import WallClock
from ..monitor.core import MonitorCore
from ..monitor.scripts import SnapshotScriptEngine
from ..protocol.messages import (
    ExpandCommand,
    MigrateCommand,
    Register,
    ShrinkCommand,
    StatusQuery,
    Unregister,
)
from ..rules.model import RuleSet, SimpleRule
from ..trace import get_tracer
from ..trace.events import EV_LIVE_RESUME, EV_LIVE_SHIP
from . import proc_sensors
from .tasks import TASK_MERGERS, TASK_SPLITTERS, TASK_TYPES
from .transport import LiveEndpoint


@dataclass
class LiveTask:
    """One running (or checkpointed) task."""

    task_id: int
    task_type: str
    state: dict
    started_at: float
    est_seconds: float = 60.0
    done: threading.Event = field(default_factory=threading.Event)
    #: Set to ask the worker to checkpoint at the next poll-point.
    migrate_to: Optional[str] = None
    #: Set to ask the worker to shard across these nodes (Expand).
    expand_to: Optional[tuple] = None
    #: Set to ask the worker to fold into a peer on this node (Shrink).
    shrink_to: Optional[str] = None
    result: Optional[dict] = None
    hops: int = 0
    #: Malleability declaration, reported to the registry so its
    #: grow/shrink triggers see the same fields as the sim's schema.
    world_size: int = 1
    min_world: int = 1
    max_world: int = 1
    efficiency_curve: tuple = ()


def default_ruleset(capacity_threshold: float) -> RuleSet:
    """The demo classification as a real rule (§4): one simple rule on
    the 1-minute load average, busy past 0.9, overloaded past the
    node's capacity threshold."""
    rules = RuleSet()
    rules.add(SimpleRule(number=1, name="load", script="loadAvg.sh",
                         operator=">", busy=0.9,
                         overloaded=capacity_threshold))
    return rules


class LiveNode:
    """One virtual host of the live deployment."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        registry_address: Optional[str] = None,
        interval: float = 0.5,
        base_load: float = 0.1,
        capacity_threshold: float = 1.5,
        port: int = 0,
        ruleset: Optional[RuleSet] = None,
        policy: Any = None,
        sustain: int = 1,
        intervals_by_state: Optional[dict] = None,
        root_rule: Optional[int] = None,
        n_levels: int = 3,
    ):
        self.name = name
        self.endpoint = LiveEndpoint(name, port=port)
        self.registry_address = registry_address
        self.base_load = float(base_load)
        self.capacity_threshold = float(capacity_threshold)
        self.injected_load = 0.0
        self.tasks: Dict[int, LiveTask] = {}
        self.completed: list = []
        self.migrations_out = 0
        self.migrations_in = 0
        self.expands_out = 0
        self.shrinks_out = 0
        self.merges_in = 0
        self._lock = threading.Lock()
        #: Serializes MonitorCore cycles: the periodic loop and the
        #: StatusQuery pull path both pump the core.  Ordering is
        #: always _mon_lock → _lock, never the reverse.
        self._mon_lock = threading.Lock()
        self._stop = threading.Event()
        self._cpu = proc_sensors.CpuIdleSampler()
        self._net = proc_sensors.NetRateSampler()
        clock = WallClock()
        self._clock = clock
        self.engine = SnapshotScriptEngine(self._sample)
        self.monitor = MonitorCore(
            clock=clock,
            host_name=self.endpoint.address,
            registry_address=registry_address or "",
            script_engine=self.engine,
            ruleset=ruleset or default_ruleset(self.capacity_threshold),
            policy=policy,
            interval=interval,
            intervals_by_state=intervals_by_state,
            sustain=sustain,
            root_rule=root_rule,
            n_levels=n_levels,
        )
        self.commander = CommanderCore(
            clock=clock, host_name=self.endpoint.address,
            deliver=self._signal,
        )
        self._threads = [
            threading.Thread(target=self._serve_loop,
                             name=f"{name}-serve", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name=f"{name}-monitor", daemon=True),
        ]
        for t in self._threads:
            t.start()

    # -- public API -------------------------------------------------------
    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def interval(self) -> float:
        return self.monitor.interval

    @property
    def state(self):
        return self.monitor.state

    @property
    def reported_state(self):
        return self.monitor.reported_state

    def submit(self, task_type: str, state: dict,
               est_seconds: float = 60.0,
               world_size: int = 1, min_world: int = 1,
               max_world: int = 1,
               efficiency_curve: tuple = ()) -> LiveTask:
        """Run a checkpointable task on this node.

        ``min_world``/``max_world``/``efficiency_curve`` declare the
        task malleable (the live analog of the sim's application
        schema): the registry may then answer overload here with an
        ``ExpandCommand``/``ShrinkCommand`` instead of a migration.
        """
        if task_type not in TASK_TYPES:
            raise KeyError(f"unknown task type {task_type!r}")
        task = LiveTask(
            task_id=next(self._ids),
            task_type=task_type,
            state=state,
            started_at=time.monotonic(),
            est_seconds=est_seconds,
            world_size=int(world_size),
            min_world=int(min_world),
            max_world=int(max_world),
            efficiency_curve=tuple(efficiency_curve),
        )
        with self._lock:
            self.tasks[task.task_id] = task
        threading.Thread(target=self._run_task, args=(task,),
                         name=f"{self.name}-task{task.task_id}",
                         daemon=True).start()
        return task

    def inject_load(self, load: float) -> None:
        """Add synthetic load (the demo's 'additional tasks')."""
        with self._lock:
            self.injected_load = float(load)

    def current_load(self) -> float:
        with self._lock:
            return (self.base_load + len(self.tasks)
                    + self.injected_load)

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        if self.registry_address:
            # Best-effort clean leave; the lease expires it anyway.
            self.endpoint.send_message(
                self.registry_address,
                Unregister(host=self.address),
                timestamp=time.time(),
            )
        self.endpoint.close()

    # -- worker ---------------------------------------------------------
    def _run_task(self, task: LiveTask) -> None:
        step = TASK_TYPES[task.task_type]
        while not self._stop.is_set():
            more = step(task.state)  # one poll-point per iteration
            if more and task.shrink_to is not None:
                self._checkpoint_and_ship(task, task.shrink_to,
                                          merge=True)
                return
            if more and task.expand_to:
                self._split_and_ship(task)
                continue
            dest = task.migrate_to
            if dest is not None and more:
                self._checkpoint_and_ship(task, dest)
                return
            if not more:
                with self._lock:
                    if task.state.get("queue"):
                        # A merge landed between the final step and
                        # completion: adopt it instead of finishing.
                        continue
                    self.tasks.pop(task.task_id, None)
                    task.result = dict(task.state)
                    self.completed.append(task)
                task.done.set()
                return

    def _checkpoint_and_ship(self, task: LiveTask, dest: str,
                             merge: bool = False) -> None:
        blob = pickle.dumps(task.state, pickle.HIGHEST_PROTOCOL)
        header = {
            "task_type": task.task_type,
            "est_seconds": task.est_seconds,
            "origin": self.name,
            "hops": task.hops + 1,
            "merge": merge,
        }
        ok = self.endpoint.send_state(dest, header, blob)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(EV_LIVE_SHIP, t=self._clock.now, host=self.name,
                         task=task.task_id, dest=dest, bytes=len(blob),
                         ok=ok)
        with self._lock:
            self.tasks.pop(task.task_id, None)
            if ok:
                if merge:
                    self.shrinks_out += 1
                else:
                    self.migrations_out += 1
        if not ok:
            # Destination unreachable: resume locally (no loss).
            task.migrate_to = None
            task.shrink_to = None
            with self._lock:
                self.tasks[task.task_id] = task
            threading.Thread(target=self._run_task, args=(task,),
                             daemon=True).start()

    def _split_and_ship(self, task: LiveTask) -> None:
        """Expand: deal the task's remaining work into
        ``1 + len(dests)`` shards — shard 0 continues here, the rest
        resume on the destination nodes (the live analog of the sim
        world's poll-point repartition)."""
        dests = tuple(task.expand_to or ())
        task.expand_to = None
        splitter = TASK_SPLITTERS.get(task.task_type)
        if splitter is None or not dests:
            return
        with self._lock:
            shards = splitter(task.state, len(dests) + 1)
            task.state = shards[0]
            task.world_size += len(dests)
        tracer = get_tracer()
        for dest, shard in zip(dests, shards[1:]):
            blob = pickle.dumps(shard, pickle.HIGHEST_PROTOCOL)
            header = {
                "task_type": task.task_type,
                "est_seconds": task.est_seconds,
                "origin": self.name,
                "hops": task.hops + 1,
                "world": {
                    "world_size": task.world_size,
                    "min_world": task.min_world,
                    "max_world": task.max_world,
                    "efficiency_curve": tuple(task.efficiency_curve),
                },
            }
            ok = self.endpoint.send_state(dest, header, blob)
            if tracer.enabled:
                tracer.event(EV_LIVE_SHIP, t=self._clock.now,
                             host=self.name, task=task.task_id,
                             dest=dest, bytes=len(blob), ok=ok)
            with self._lock:
                if ok:
                    self.expands_out += 1
                else:
                    # Unreachable destination: fold the shard back in
                    # at the next poll-point (no loss).
                    TASK_MERGERS[task.task_type](task.state, shard)
                    task.world_size -= 1

    # -- inbox (commander + migration receiver) ---------------------------
    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            item = self.endpoint.recv(timeout=0.1)
            if item is None:
                continue
            kind, payload = item
            if kind == "msg":
                msg, sender, ts = payload
                if isinstance(msg, (ExpandCommand, MigrateCommand, ShrinkCommand)):
                    ack = self.commander.command(msg)
                    self.endpoint.send_message(sender, ack,
                                               timestamp=time.time())
                elif isinstance(msg, StatusQuery):
                    # The registry's pull path (§3.2): answer with a
                    # full monitor cycle, same as the sim monitor.
                    self.endpoint.send_message(sender,
                                               self._status_update(),
                                               timestamp=time.time())
            elif kind == "state":
                header, blob = payload
                state = pickle.loads(blob)
                if header.get("merge") and self._merge_state(header,
                                                             state):
                    continue
                task = self.submit(header["task_type"], state,
                                   est_seconds=header["est_seconds"],
                                   **header.get("world", {}))
                task.hops = header.get("hops", 1)
                with self._lock:
                    self.migrations_in += 1
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(EV_LIVE_RESUME, t=self._clock.now,
                                 host=self.name, task=task.task_id,
                                 origin=header.get("origin", ""),
                                 hops=task.hops)

    def _merge_state(self, header: dict, state: dict) -> bool:
        """Fold a retiring shard into a running task of its type (the
        shrink merge context).  Returns False when no peer runs here —
        the shard then resumes as its own task: a shrink degenerating
        to a migration, with no work lost either way."""
        merger = TASK_MERGERS.get(header["task_type"])
        if merger is None:
            return False
        with self._lock:
            for task in self.tasks.values():
                if task.task_type == header["task_type"]:
                    merger(task.state, state)
                    task.world_size = max(1, task.world_size - 1)
                    self.merges_in += 1
                    return True
        return False

    def _signal(self, msg: Any) -> tuple:
        """The user-defined signal: delivered as a flag the worker acts
        on at its next poll-point.  Returns (delivered, detail)."""
        with self._lock:
            task = self.tasks.get(msg.pid)
        if task is None:
            return False, f"no such task {msg.pid}"
        if isinstance(msg, ExpandCommand):
            if task.task_type not in TASK_SPLITTERS:
                return False, (
                    f"task type {task.task_type!r} is not splittable"
                )
            if not msg.dests:
                return False, "expand without destinations"
            task.expand_to = tuple(msg.dests)
            return True, ""
        if isinstance(msg, ShrinkCommand):
            if not msg.dest:
                return False, "shrink without a merge peer"
            task.shrink_to = msg.dest
            return True, ""
        task.migrate_to = msg.dest
        return True, ""

    # -- monitor ----------------------------------------------------------
    def _sample(self) -> dict:
        """One coherent snapshot: genuine /proc readings plus the
        node's controllable demo load."""
        metrics = proc_sensors.snapshot(self._cpu, self._net)
        metrics["loadavg1"] = self.current_load()
        with self._lock:
            metrics["proc_count"] = float(len(self.tasks))
        return metrics

    def _monitor_loop(self) -> None:
        if self.registry_address:
            self.endpoint.send_message(
                self.registry_address,
                Register(host=self.address,
                         static_info={"name": self.name}),
                timestamp=time.time(),
            )
        while not self._stop.wait(self.monitor.current_interval()):
            if not self.registry_address:
                continue
            self.endpoint.send_message(
                self.registry_address,
                self._status_update(),
                timestamp=time.time(),
            )

    def _status_update(self):
        with self._mon_lock:
            span = self.monitor.begin_cycle()
            snapshot = self.engine.refresh()
            with self._lock:
                processes = [
                    {
                        "pid": t.task_id,
                        "name": t.task_type,
                        "start_time": t.started_at,
                        "est_completion": t.started_at + t.est_seconds,
                        "data_locality": 0.0,
                        "world_size": t.world_size,
                        "min_world": t.min_world,
                        "max_world": t.max_world,
                        "efficiency_curve": ",".join(
                            repr(float(v)) for v in t.efficiency_curve
                        ),
                    }
                    for t in self.tasks.values()
                ]
            return self.monitor.finish_cycle(span, snapshot, processes)
