"""A live node: worker + monitor + commander in one real process.

"A monitor and a commander entity reside on each host" (paper §3);
a :class:`LiveNode` plays both roles for one real OS process.  It owns
a TCP endpoint, executes checkpointable tasks on worker threads,
pushes soft-state status updates to the registry on the paper's §3.2
push model (monitor role), and acts on incoming ``MigrateCommand``s by
checkpointing the task at its next poll-point and shipping the pickled
state to the destination node over a real socket (commander + HPCM
roles, §3.3).

Load is the node's *task occupancy* plus any injected synthetic load —
deterministic for demos and tests — while genuine ``/proc`` metrics
ride along in the status updates for observability.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..protocol.messages import MigrateCommand, Register, StatusUpdate
from ..rules.states import SystemState
from . import proc_sensors
from .tasks import TASK_TYPES
from .transport import LiveEndpoint


@dataclass
class LiveTask:
    """One running (or checkpointed) task."""

    task_id: int
    task_type: str
    state: dict
    started_at: float
    est_seconds: float = 60.0
    done: threading.Event = field(default_factory=threading.Event)
    #: Set to ask the worker to checkpoint at the next poll-point.
    migrate_to: Optional[str] = None
    result: Optional[dict] = None
    hops: int = 0


class LiveNode:
    """One virtual host of the live deployment."""

    _ids = itertools.count(1)

    def __init__(
        self,
        name: str,
        registry_address: Optional[str] = None,
        interval: float = 0.5,
        base_load: float = 0.1,
        capacity_threshold: float = 1.5,
        port: int = 0,
    ):
        self.name = name
        self.endpoint = LiveEndpoint(name, port=port)
        self.registry_address = registry_address
        self.interval = float(interval)
        self.base_load = float(base_load)
        self.capacity_threshold = float(capacity_threshold)
        self.injected_load = 0.0
        self.tasks: Dict[int, LiveTask] = {}
        self.completed: list = []
        self.migrations_out = 0
        self.migrations_in = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._cpu = proc_sensors.CpuIdleSampler()
        self._net = proc_sensors.NetRateSampler()
        self._threads = [
            threading.Thread(target=self._serve_loop,
                             name=f"{name}-serve", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name=f"{name}-monitor", daemon=True),
        ]
        for t in self._threads:
            t.start()

    # -- public API -------------------------------------------------------
    @property
    def address(self) -> str:
        return self.endpoint.address

    def submit(self, task_type: str, state: dict,
               est_seconds: float = 60.0) -> LiveTask:
        """Run a checkpointable task on this node."""
        if task_type not in TASK_TYPES:
            raise KeyError(f"unknown task type {task_type!r}")
        task = LiveTask(
            task_id=next(self._ids),
            task_type=task_type,
            state=state,
            started_at=time.monotonic(),
            est_seconds=est_seconds,
        )
        with self._lock:
            self.tasks[task.task_id] = task
        threading.Thread(target=self._run_task, args=(task,),
                         name=f"{self.name}-task{task.task_id}",
                         daemon=True).start()
        return task

    def inject_load(self, load: float) -> None:
        """Add synthetic load (the demo's 'additional tasks')."""
        self.injected_load = float(load)

    def current_load(self) -> float:
        with self._lock:
            return (self.base_load + len(self.tasks)
                    + self.injected_load)

    def stop(self) -> None:
        self._stop.set()
        self.endpoint.close()

    # -- worker ---------------------------------------------------------
    def _run_task(self, task: LiveTask) -> None:
        step = TASK_TYPES[task.task_type]
        while not self._stop.is_set():
            more = step(task.state)  # one poll-point per iteration
            dest = task.migrate_to
            if dest is not None and more:
                self._checkpoint_and_ship(task, dest)
                return
            if not more:
                with self._lock:
                    self.tasks.pop(task.task_id, None)
                    task.result = dict(task.state)
                    self.completed.append(task)
                task.done.set()
                return

    def _checkpoint_and_ship(self, task: LiveTask, dest: str) -> None:
        blob = pickle.dumps(task.state, pickle.HIGHEST_PROTOCOL)
        header = {
            "task_type": task.task_type,
            "est_seconds": task.est_seconds,
            "origin": self.name,
            "hops": task.hops + 1,
        }
        ok = self.endpoint.send_state(dest, header, blob)
        with self._lock:
            self.tasks.pop(task.task_id, None)
        if ok:
            self.migrations_out += 1
        else:
            # Destination unreachable: resume locally (no loss).
            task.migrate_to = None
            with self._lock:
                self.tasks[task.task_id] = task
            threading.Thread(target=self._run_task, args=(task,),
                             daemon=True).start()

    # -- inbox (commander + migration receiver) ---------------------------
    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            item = self.endpoint.recv(timeout=0.1)
            if item is None:
                continue
            kind, payload = item
            if kind == "msg":
                msg, sender, ts = payload
                if isinstance(msg, MigrateCommand):
                    self._handle_migrate(msg)
            elif kind == "state":
                header, blob = payload
                state = pickle.loads(blob)
                task = self.submit(header["task_type"], state,
                                   est_seconds=header["est_seconds"])
                task.hops = header.get("hops", 1)
                self.migrations_in += 1

    def _handle_migrate(self, msg: MigrateCommand) -> None:
        with self._lock:
            task = self.tasks.get(msg.pid)
        if task is not None:
            # The user-defined signal: acted on at the next poll-point.
            task.migrate_to = msg.dest

    # -- monitor ----------------------------------------------------------
    def _monitor_loop(self) -> None:
        if self.registry_address:
            self.endpoint.send_message(
                self.registry_address,
                Register(host=self.address,
                         static_info={"name": self.name}),
                timestamp=time.time(),
            )
        while not self._stop.is_set():
            time.sleep(self.interval)
            if not self.registry_address or self._stop.is_set():
                continue
            self.endpoint.send_message(
                self.registry_address,
                self._status_update(),
                timestamp=time.time(),
            )

    def _status_update(self) -> StatusUpdate:
        load = self.current_load()
        if load > self.capacity_threshold:
            state = SystemState.OVERLOADED
        elif load > 0.9:
            state = SystemState.BUSY
        else:
            state = SystemState.FREE
        metrics = proc_sensors.snapshot(self._cpu, self._net)
        metrics["loadavg1"] = load  # the controllable demo load
        metrics["proc_count"] = float(len(self.tasks))
        with self._lock:
            now = time.monotonic()
            processes = [
                {
                    "pid": t.task_id,
                    "name": t.task_type,
                    "start_time": t.started_at,
                    "est_completion": t.started_at + t.est_seconds,
                    "data_locality": 0.0,
                }
                for t in self.tasks.values()
            ]
        return StatusUpdate(host=self.address, state=state,
                            metrics=metrics, processes=processes)
