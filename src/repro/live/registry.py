"""Live registry/scheduler: the decision entity over real sockets.

The paper's registry/scheduler is the "global system-state manager
and decision maker" whose registration "is based on a soft-state
mechanism" (§3.2).  This live version reuses the simulation's
soft-state table and victim selection unchanged (they only need a
``.now`` clock), listening for XML status pushes from
:class:`~repro.live.node.LiveNode` monitors and sending
``MigrateCommand``s back — the paper's architecture running on a real
wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, List, Optional

from ..monitor.selector import ProcessInfo, select_victim
from ..protocol.messages import (
    MigrateCommand,
    Register,
    StatusUpdate,
    Unregister,
)
from ..registry.softstate import SoftStateTable
from ..registry.strategies import first_fit
from ..rules.states import SystemState
from .transport import LiveEndpoint


class _WallClock:
    """Duck-typed environment for SoftStateTable: just a clock."""

    @property
    def now(self) -> float:
        return time.monotonic()


@dataclass
class LiveDecision:
    at: float
    source: str
    dest: Optional[str]
    pid: Optional[int]


class LiveRegistry:
    """Registry/scheduler thread for a live deployment."""

    def __init__(
        self,
        policy: Any = None,
        lease: float = 5.0,
        command_cooldown: float = 2.0,
        strategy=first_fit,
        port: int = 0,
    ):
        self.endpoint = LiveEndpoint("registry", port=port)
        self.table = SoftStateTable(_WallClock(), lease=lease)
        self.policy = policy
        self.strategy = strategy
        self.command_cooldown = float(command_cooldown)
        self.decisions: List[LiveDecision] = []
        self._last_command: dict = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="live-registry", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> str:
        return self.endpoint.address

    def stop(self) -> None:
        self._stop.set()
        self.endpoint.close()

    # -- main loop ------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            item = self.endpoint.recv(timeout=0.1)
            if item is None:
                continue
            kind, payload = item
            if kind != "msg":
                continue
            msg, sender, ts = payload
            with self._lock:
                if isinstance(msg, Register):
                    self.table.register(msg.host, msg.static_info)
                elif isinstance(msg, StatusUpdate):
                    self.table.update(msg.host, msg.state, msg.metrics,
                                      msg.processes)
                    if msg.state is SystemState.OVERLOADED:
                        self._decide(msg)
                elif isinstance(msg, Unregister):
                    self.table.unregister(msg.host)

    def _decide(self, update: StatusUpdate) -> None:
        source = update.host
        now = time.monotonic()
        last = self._last_command.get(source)
        if last is not None and now - last < self.command_cooldown:
            return
        victim = select_victim(
            ProcessInfo.from_dict(p) for p in update.processes
        )
        if victim is None:
            return
        eligible = [
            rec for rec in self.table.free_hosts()
            if rec.host != source and self._dest_ok(rec)
        ]
        chosen = self.strategy(eligible, rng=None)
        self.decisions.append(
            LiveDecision(at=now, source=source,
                         dest=chosen.host if chosen else None,
                         pid=victim.pid)
        )
        if chosen is None:
            return
        self._last_command[source] = now
        self.endpoint.send_message(
            source,
            MigrateCommand(host=source, pid=victim.pid,
                           dest=chosen.host,
                           reason=f"{source} overloaded"),
            timestamp=time.time(),
        )

    def _dest_ok(self, record) -> bool:
        policy = self.policy
        if policy is None or not getattr(policy, "enabled", True):
            return True
        return all(
            cond.holds(record.metrics)
            for cond in getattr(policy, "dest_conditions", ())
        )
