"""Live registry/scheduler: the decision entity over real sockets.

The paper's registry/scheduler is the "global system-state manager
and decision maker" whose registration "is based on a soft-state
mechanism" (§3.2).  This driver pumps the *same*
:class:`~repro.registry.core.RegistryCore` the simulation uses — the
soft-state table, victim selection, first fit over policy destination
conditions, the command cooldown, and hierarchical
``CandidateRequest`` escalation are one code path in both runtimes —
from real threads over real TCP.  A behaviour exists in both runtimes
or in neither; ``tests/live/test_parity.py`` holds that line.

Threading model: the receive loop folds messages into the core under
one lock; each decision the core spawns (a
:class:`~repro.entity.outbox.Task` effect) runs on its own thread,
advancing the core's generator under the same lock but executing the
blocking effects — ``Spend`` → sleep, ``Query`` → bounded wait for the
matching ``CandidateReply`` — outside it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, List, Optional

from ..entity.clock import WallClock
from ..entity.outbox import Deliver, Expand, Query, Send, Shrink, Spend, Task
from ..registry.core import Decision, RegistryCore
from ..registry.strategies import first_fit
from .transport import LiveEndpoint

#: Back-compat alias: live decisions are plain core decisions now.
LiveDecision = Decision

__all__ = ["LiveDecision", "LiveRegistry"]


class LiveRegistry:
    """Registry/scheduler thread for a live deployment."""

    def __init__(
        self,
        policy: Any = None,
        lease: float = 5.0,
        command_cooldown: float = 2.0,
        strategy=first_fit,
        port: int = 0,
        name: str = "registry",
        parent_address: Optional[str] = None,
        decision_cost: float = 0.0,
        query_timeout: float = 5.0,
        max_data_locality: float = 0.5,
        rng: Any = None,
        vector_mode: str = "auto",
    ):
        self.endpoint = LiveEndpoint(name, port=port)
        #: ``name@host:port`` — parents route delegated candidate
        #: queries to the socket part; the "@" marks registry records.
        self.core = RegistryCore(
            clock=WallClock(),
            label=f"{name}@{self.endpoint.address}",
            lease=lease,
            policy=policy,
            strategy=strategy,
            rng=rng,
            decision_cost=decision_cost,
            command_cooldown=command_cooldown,
            parent_address=parent_address,
            max_data_locality=max_data_locality,
            query_timeout=query_timeout,
            # The overloaded node itself plays the commander role.
            commander_for=lambda source: source,
            vector_mode=vector_mode,
        )
        self._pending_replies: dict = {}
        self._reply_lock = threading.Lock()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"live-registry:{name}", daemon=True
        )
        self._thread.start()
        self._parent_thread = None
        if parent_address:
            self._parent_thread = threading.Thread(
                target=self._parent_loop, name=f"live-registry-up:{name}",
                daemon=True,
            )
            self._parent_thread.start()

    # -- the core's state, exposed for experiments and tests ------------
    @property
    def address(self) -> str:
        return self.endpoint.address

    @property
    def label(self) -> str:
        return self.core.label

    @property
    def table(self):
        return self.core.table

    @property
    def decisions(self) -> List[Decision]:
        return self.core.decisions

    @property
    def reconfigurations(self):
        return self.core.reconfigurations

    @property
    def policy(self):
        return self.core.policy

    @property
    def parent_address(self):
        return self.core.parent_address

    def stop(self) -> None:
        self._stop.set()
        self.endpoint.close()

    # -- effect interpretation ------------------------------------------
    def _perform(self, effects) -> None:
        """Run the synchronous effects of one handled message."""
        for effect in effects:
            if isinstance(effect, (Send, Expand, Shrink)):
                # Expand/Shrink are sends with first-class reshape
                # intent; on the live wire all three are one TCP hop
                # to the overloaded node (its own commander).
                self._send(effect.to, effect.msg)
            elif isinstance(effect, Task):
                threading.Thread(
                    target=self._pump, args=(effect.gen,),
                    name=effect.name, daemon=True,
                ).start()
            elif isinstance(effect, Deliver):
                with self._reply_lock:
                    waiter = self._pending_replies.pop(effect.req_id, None)
                if waiter is not None:
                    try:
                        waiter.put_nowait(effect.reply)
                    except queue.Full:
                        pass

    def _pump(self, gen) -> None:
        """Drive one core task generator on this thread."""
        value = None
        while not self._stop.is_set():
            try:
                with self._lock:
                    effect = gen.send(value)
            except StopIteration:
                return
            value = None
            if isinstance(effect, Spend):
                time.sleep(effect.seconds)
            elif isinstance(effect, (Send, Expand, Shrink)):
                self._send(effect.to, effect.msg)
            elif isinstance(effect, Query):
                waiter: "queue.Queue" = queue.Queue(maxsize=1)
                with self._reply_lock:
                    self._pending_replies[effect.req_id] = waiter
                self._send(effect.to, effect.request)
                try:
                    value = waiter.get(timeout=effect.timeout)
                except queue.Empty:
                    value = None
                with self._reply_lock:
                    self._pending_replies.pop(effect.req_id, None)

    def _send(self, to: str, msg: Any) -> None:
        self.endpoint.send_message(to, msg, timestamp=time.time())

    # -- main loop ------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            item = self.endpoint.recv(timeout=0.1)
            if item is None:
                continue
            kind, payload = item
            if kind != "msg":
                continue
            msg, sender, ts = payload
            with self._lock:
                effects = self.core.handle(msg, sender)
            self._perform(effects)

    def _parent_loop(self) -> None:
        """Ship the core's aggregate soft-state report upward."""
        while not self._stop.wait(1.0):
            with self._lock:
                send = self.core.parent_update()
            if send is not None:
                self._send(send.to, send.msg)
