"""Structured tracing of the migration lifecycle (docs/tracing.md).

One trace answers the question the paper's §5.2 answers with Figure 7:
*when did each phase of an autonomic migration happen, and what did it
cost?*  The instrumented layers — monitor sampling, rule firing,
registry decisions, commander signals, HPCM poll-point transfers —
emit records through a process-wide *ambient tracer*:

>>> from repro import trace
>>> tracer = trace.Tracer()
>>> with trace.use(tracer):
...     pass  # deploy a Rescheduler, run the simulation
>>> tracer.names()
set()

The ambient tracer defaults to a disabled :class:`NullTracer`; see
:mod:`repro.trace.tracer` for the overhead contract and
:mod:`repro.trace.exporters` for the JSONL and Chrome/Perfetto output
formats.  ``repro trace <experiment>`` and ``repro run <experiment>
--trace out.jsonl`` drive the whole pipeline from the command line.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from . import events
from .events import EVENTS, EventSpec
from .exporters import (
    export_chrome,
    export_jsonl,
    load_jsonl,
    to_chrome,
    to_jsonl_lines,
)
from .kernel import attach_kernel, detach_kernel
from .tracer import NullTracer, SpanHandle, TraceRecord, Tracer

#: The permanent disabled tracer the ambient slot falls back to.
_NULL = NullTracer()

_current: Tracer = _NULL


def get_tracer() -> Tracer:
    """The ambient tracer (a disabled :class:`NullTracer` by default)."""
    return _current


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the ambient tracer (``None`` → disabled)."""
    global _current
    _current = tracer if tracer is not None else _NULL
    return _current


@contextmanager
def use(tracer: Tracer) -> Iterator[Tracer]:
    """Ambient-tracer scope: install on entry, restore on exit."""
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


__all__ = [
    "EVENTS",
    "EventSpec",
    "NullTracer",
    "SpanHandle",
    "TraceRecord",
    "Tracer",
    "attach_kernel",
    "detach_kernel",
    "events",
    "export_chrome",
    "export_jsonl",
    "get_tracer",
    "load_jsonl",
    "set_tracer",
    "to_chrome",
    "to_jsonl_lines",
    "use",
]
