"""Structured tracing: typed span/event records with a no-op mode.

The paper's §5 results all hinge on *when* things happen — detection
latency (the 72 s warm-up), decision time (~2 ms), spawn (~0.3 s),
poll-point (~1.4 s), resume (<1 s), total migration (~7.5 s).  This
module records the full event flow — monitor sample → rule firing →
registry decision → commander signal → HPCM poll-point transfer — as
typed records that one trace file can reconstruct into Figure-style
timelines (malleability frameworks such as the DMR API lean on the
same per-phase instrumentation to attribute reconfiguration cost).

Two record shapes share one type: an *instant event* (``dur is None``)
and a *span* (``dur`` holds the phase length).  Producers emit through
three APIs:

* explicit ``tracer.event(name, t=..., **attrs)`` /
  ``handle = tracer.begin(...)`` … ``handle.end(t=...)`` — the form
  the simulation entities use (they know ``env.now``);
* ``with tracer.span(name): ...`` — context manager, stamps times from
  the tracer's clock;
* ``@tracer.traced(name)`` — decorator wrapping a function call in a
  span.

The ambient tracer (see :mod:`repro.trace`) defaults to a
:class:`NullTracer` whose ``enabled`` flag is ``False``; every
instrumentation site guards attribute construction behind that flag,
so tracing disabled costs one global read and one attribute test per
potential record.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class TraceRecord:
    """One trace entry: an instant event, or a completed span.

    ``t`` is the event time (span start for spans) in the producer's
    clock domain — simulated seconds for the simulation, wall seconds
    for live mode.  ``attrs`` carries the event's stable attributes
    (see :mod:`repro.trace.events` for the catalogue).
    """

    name: str
    t: float
    dur: Optional[float] = None
    host: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.dur is not None

    @property
    def end_t(self) -> float:
        return self.t + (self.dur or 0.0)


class SpanHandle:
    """An open span; close it with :meth:`end` or ``with``."""

    __slots__ = ("_tracer", "name", "t0", "host", "attrs", "closed")

    def __init__(self, tracer: "Tracer", name: str, t0: float,
                 host: Optional[str], attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.t0 = t0
        self.host = host
        self.attrs = attrs
        self.closed = False

    def end(self, t: Optional[float] = None,
            **attrs: Any) -> Optional[TraceRecord]:
        """Close the span at ``t`` (default: the tracer's clock).

        Extra ``attrs`` are folded into the record (outcomes live
        here: the state a sample classified to, a migration's
        success).  Idempotent: a second ``end`` is ignored.
        """
        if self.closed:
            return None
        self.closed = True
        t1 = self._tracer._stamp(t)
        if attrs:
            self.attrs.update(attrs)
        rec = TraceRecord(
            name=self.name, t=self.t0, dur=max(0.0, t1 - self.t0),
            host=self.host, attrs=self.attrs,
        )
        self._tracer.records.append(rec)
        return rec

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end(error=repr(exc)) if exc else self.end()


class _NullSpan:
    """The span handle a :class:`NullTracer` hands out."""

    __slots__ = ()
    closed = True

    def end(self, t: Optional[float] = None, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`TraceRecord` objects in memory.

    ``clock`` is an optional zero-argument callable giving the current
    time; the :class:`~repro.core.rescheduler.Rescheduler` binds it to
    its simulation clock on deployment.  Producers that know the time
    pass ``t=`` explicitly; clock-less emission falls back to the last
    explicitly stamped time, so env-free layers (the rule evaluator)
    inherit the timestamp of the enclosing monitor cycle.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.records: List[TraceRecord] = []
        self.clock = clock
        self._last_t = 0.0

    # -- time -----------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    def now(self) -> float:
        if self.clock is not None:
            return float(self.clock())
        return self._last_t

    def _stamp(self, t: Optional[float]) -> float:
        if t is None:
            return self.now()
        t = float(t)
        self._last_t = t
        return t

    # -- producing ------------------------------------------------------
    def event(self, name: str, t: Optional[float] = None,
              host: Optional[str] = None, **attrs: Any) -> TraceRecord:
        """Record an instant event."""
        rec = TraceRecord(name=name, t=self._stamp(t), host=host,
                          attrs=attrs)
        self.records.append(rec)
        return rec

    def begin(self, name: str, t: Optional[float] = None,
              host: Optional[str] = None, **attrs: Any) -> SpanHandle:
        """Open a span; the record is appended when it ends."""
        return SpanHandle(self, name, self._stamp(t), host, attrs)

    def span(self, name: str, t: Optional[float] = None,
             host: Optional[str] = None, **attrs: Any) -> SpanHandle:
        """Context-manager form of :meth:`begin`::

            with tracer.span("phase.work", host="ws1"):
                do_work()
        """
        return self.begin(name, t=t, host=host, **attrs)

    def traced(self, name: str,
               host: Optional[str] = None) -> Callable:
        """Decorator: wrap every call of ``fn`` in a span."""

        def deco(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(name, host=host):
                    return fn(*args, **kwargs)

            return wrapper

        return deco

    # -- consuming ------------------------------------------------------
    def clear(self) -> None:
        self.records.clear()

    def by_name(self, name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.name == name]

    def names(self) -> set:
        return {r.name for r in self.records}

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing.

    Instrumentation sites check ``tracer.enabled`` before building
    attribute dicts, so the common path through an untraced simulation
    costs a global read plus one attribute test.
    """

    enabled = False

    def event(self, name: str, t: Optional[float] = None,
              host: Optional[str] = None, **attrs: Any) -> None:
        return None

    def begin(self, name: str, t: Optional[float] = None,
              host: Optional[str] = None, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    span = begin
