"""Opt-in kernel-level dispatch tracing.

The simulation kernel fires thousands of events per simulated minute,
so per-dispatch tracing is never on by default: the kernel only calls
an optional ``trace_hook`` when one is installed.  :func:`attach_kernel`
installs a hook that emits one ``sim.dispatch`` record per processed
kernel event — useful when debugging the event interleaving itself
(who woke whom, in what order), unaffordable for whole experiments.
"""

from __future__ import annotations

from typing import Any

from .events import EV_SIM_DISPATCH
from .tracer import Tracer


def attach_kernel(env: Any, tracer: Tracer) -> None:
    """Emit one ``sim.dispatch`` record per kernel event on ``env``."""

    def hook(now: float, event: Any) -> None:
        if not tracer.enabled:
            return
        proc = getattr(event, "name", "") or ""
        tracer.event(
            EV_SIM_DISPATCH, t=now,
            event=type(event).__name__, process=proc,
        )

    env.trace_hook = hook


def detach_kernel(env: Any) -> None:
    """Remove a previously attached dispatch hook."""
    env.trace_hook = None
