"""Trace exporters: JSONL and Chrome/Perfetto trace-event format.

JSONL is the pipeline-friendly form (one JSON object per line, stable
keys, streamable with ``jq``); the Chrome form is the *JSON Trace
Event Format* that ``chrome://tracing`` and https://ui.perfetto.dev
load directly, with one Perfetto "process" track per host so a
migration reads as work hopping between host tracks.

Times: trace records carry simulated seconds; the Chrome format wants
microseconds (``ts``/``dur``), so seconds are scaled by 1e6.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from .tracer import TraceRecord

#: Chrome trace-event timestamps are in microseconds.
_US = 1e6


def to_jsonl_lines(records: Iterable[TraceRecord]) -> List[str]:
    """One stable-keyed JSON object per record.

    Keys appear in exactly this order: ``name``, ``t``, ``dur``
    (spans only), ``host`` (when set), then the event attributes under
    ``attrs``.  Consumers may rely on the order.
    """
    lines = []
    for rec in records:
        obj = {"name": rec.name, "t": rec.t}
        if rec.dur is not None:
            obj["dur"] = rec.dur
        if rec.host is not None:
            obj["host"] = rec.host
        obj["attrs"] = _jsonable(rec.attrs)
        lines.append(json.dumps(obj, sort_keys=False))
    return lines


def export_jsonl(records: Iterable[TraceRecord],
                 path_or_file: Union[str, IO]) -> int:
    """Write records as JSONL; returns the number of lines written."""
    lines = to_jsonl_lines(records)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            fh.write(text)
    return len(lines)


def load_jsonl(path_or_file: Union[str, IO]) -> List[TraceRecord]:
    """Read a JSONL trace back into :class:`TraceRecord` objects."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file, "r", encoding="utf-8") as fh:
            text = fh.read()
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        records.append(TraceRecord(
            name=obj["name"], t=obj["t"], dur=obj.get("dur"),
            host=obj.get("host"), attrs=obj.get("attrs", {}),
        ))
    return records


def to_chrome(records: Iterable[TraceRecord],
              label: str = "repro") -> dict:
    """The JSON Trace Event Format object Perfetto loads.

    Spans become complete ``"X"`` events, instants become ``"i"``
    events with thread scope; each distinct host gets a ``pid`` plus a
    ``process_name`` metadata event, and records without a host land
    on a shared "cluster" track.
    """
    pids = {}

    def pid_for(host: Optional[str]) -> int:
        key = host if host is not None else "cluster"
        if key not in pids:
            pids[key] = len(pids) + 1
        return pids[key]

    trace_events = []
    for rec in records:
        entry = {
            "name": rec.name,
            "cat": rec.name.split(".", 1)[0],
            "ph": "X" if rec.is_span else "i",
            "ts": rec.t * _US,
            "pid": pid_for(rec.host),
            "tid": 1,
            "args": _jsonable(rec.attrs),
        }
        if rec.is_span:
            entry["dur"] = rec.dur * _US
        else:
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)
    for key, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": key},
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": label},
    }


def export_chrome(records: Iterable[TraceRecord],
                  path_or_file: Union[str, IO],
                  label: str = "repro") -> int:
    """Write the Chrome/Perfetto trace; returns the event count."""
    doc = to_chrome(records, label=label)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    return len(doc["traceEvents"])


def _jsonable(attrs: dict) -> dict:
    """Attribute values coerced to JSON-representable types."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out
