"""The stable event-name catalogue.

Every record the instrumented runtime emits uses one of the ``EV_*``
names below; the names are **stable** (trace consumers and the docs
may rely on them) and each is documented in ``docs/tracing.md`` — a
tier-1 test diffs this catalogue against that document and against the
emitting code, so adding an event here without documenting it (or
documenting one that nothing emits) fails the build.

Naming convention: ``<layer>.<what_happened>``, lower-case, one dot.
The layer prefix matches the package that emits the record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# -- simulation kernel ---------------------------------------------------
EV_SIM_DISPATCH = "sim.dispatch"

# -- monitor (paper §3.1) ------------------------------------------------
EV_MONITOR_SAMPLE = "monitor.sample"
EV_MONITOR_REPORT = "monitor.report"

# -- rule engine (paper §4) ----------------------------------------------
EV_RULE_FIRE = "rule.fire"
EV_RULE_EVALUATE = "rule.evaluate"

# -- registry/scheduler (paper §3.2) -------------------------------------
EV_REGISTRY_REGISTER = "registry.register"
EV_REGISTRY_UPDATE = "registry.update"
EV_REGISTRY_EXPIRE = "registry.lease_expired"
EV_REGISTRY_DECIDE = "registry.decide"
EV_REGISTRY_COMMAND = "registry.command"

# -- commander (paper §3.3) ----------------------------------------------
EV_COMMANDER_SIGNAL = "commander.signal"

# -- HPCM migration middleware (paper §3, §5.2) --------------------------
EV_HPCM_POLLPOINT = "hpcm.pollpoint"
EV_HPCM_SPAWN = "hpcm.spawn"
EV_HPCM_CAPTURE = "hpcm.capture"
EV_HPCM_TRANSFER = "hpcm.transfer"
EV_HPCM_RESUME = "hpcm.resume"
EV_HPCM_DRAIN = "hpcm.drain"
EV_HPCM_MIGRATION = "hpcm.migration"
EV_HPCM_REPARTITION = "hpcm.repartition"

# -- application lifecycle -----------------------------------------------
EV_APP_START = "app.start"
EV_APP_FINISH = "app.finish"
EV_APP_EXPAND = "app.expand"
EV_APP_SHRINK = "app.shrink"

# -- live runtime (real sockets; the HPCM analog is a pickled state) -----
EV_LIVE_SHIP = "live.state_ship"
EV_LIVE_RESUME = "live.state_resume"

# -- rescheduler façade --------------------------------------------------
EV_RESCHEDULER_DEPLOY = "rescheduler.deploy"
EV_RESCHEDULER_STOP = "rescheduler.stop"


@dataclass(frozen=True)
class EventSpec:
    """Catalogue entry for one stable event name."""

    name: str
    #: "event" (instant) or "span" (has a duration).
    kind: str
    #: Module that emits it.
    module: str
    #: Attribute keys the record carries (beyond name/t/dur/host).
    attrs: Tuple[str, ...]
    #: One-line description.
    doc: str


#: name → spec, the single source of truth for the docs diff test.
EVENTS = {
    spec.name: spec for spec in (
        EventSpec(
            EV_SIM_DISPATCH, "event", "repro.trace.kernel",
            ("event", "process"),
            "one kernel event dispatched (opt-in, very chatty)"),
        EventSpec(
            EV_MONITOR_SAMPLE, "span", "repro.monitor.core",
            ("cycle", "state", "reported"),
            "one monitoring cycle: scripts run, state classified"),
        EventSpec(
            EV_MONITOR_REPORT, "event", "repro.monitor.core",
            ("state", "to"),
            "soft-state status push sent to the registry"),
        EventSpec(
            EV_RULE_FIRE, "event", "repro.rules.evaluator",
            ("rule", "rule_name", "script", "param", "value",
             "operator", "busy", "overloaded", "state"),
            "one simple rule evaluated: measured value vs thresholds"),
        EventSpec(
            EV_RULE_EVALUATE, "event", "repro.rules.evaluator",
            ("state", "root", "rules"),
            "whole-host rule evaluation produced a state"),
        EventSpec(
            EV_REGISTRY_REGISTER, "event", "repro.registry.core",
            ("registry",),
            "a host (re-)registered with the registry/scheduler"),
        EventSpec(
            EV_REGISTRY_UPDATE, "event", "repro.registry.core",
            ("state", "registry"),
            "a soft-state push was folded into the host table"),
        EventSpec(
            EV_REGISTRY_EXPIRE, "event", "repro.registry.softstate",
            ("last_update", "lease"),
            "a host's lease lapsed; record demoted to UNAVAILABLE"),
        EventSpec(
            EV_REGISTRY_DECIDE, "span", "repro.registry.core",
            ("pid", "app", "dest", "escalated"),
            "scheduling decision: victim chosen, destination resolved"),
        EventSpec(
            EV_REGISTRY_COMMAND, "event", "repro.registry.core",
            ("pid", "dest", "decision_s"),
            "MigrateCommand sent to the source host's commander"),
        EventSpec(
            EV_COMMANDER_SIGNAL, "event", "repro.commander.core",
            ("pid", "dest", "delivered", "detail"),
            "commander delivered the migration signal to the process"),
        EventSpec(
            EV_HPCM_POLLPOINT, "event", "repro.hpcm.runtime",
            ("app", "dest", "step"),
            "migrating process reached its poll-point"),
        EventSpec(
            EV_HPCM_SPAWN, "span", "repro.hpcm.runtime",
            ("app", "dest", "warm"),
            "initialized process created on the destination (MPI-2 DPM)"),
        EventSpec(
            EV_HPCM_CAPTURE, "span", "repro.hpcm.runtime",
            ("app", "bytes"),
            "memory state pickled on the source"),
        EventSpec(
            EV_HPCM_TRANSFER, "span", "repro.hpcm.runtime",
            ("app", "dest", "bytes", "chunks"),
            "execution + memory state streamed to the destination"),
        EventSpec(
            EV_HPCM_RESUME, "event", "repro.hpcm.runtime",
            ("app", "source"),
            "execution resumed on the destination"),
        EventSpec(
            EV_HPCM_DRAIN, "span", "repro.hpcm.runtime",
            ("app", "overlap_s"),
            "residual state drained while execution already ran"),
        EventSpec(
            EV_HPCM_MIGRATION, "span", "repro.hpcm.runtime",
            ("app", "source", "dest", "succeeded", "failure"),
            "one whole migration, order to completion"),
        EventSpec(
            EV_HPCM_REPARTITION, "span", "repro.hpcm.world",
            ("app", "kind", "old_size", "new_size", "bytes",
             "succeeded", "failure"),
            "one N:M world reshape: barrier, split/merge, respawn"),
        EventSpec(
            EV_APP_START, "event", "repro.hpcm.runtime",
            ("app",),
            "managed application started"),
        EventSpec(
            EV_APP_FINISH, "event", "repro.hpcm.runtime",
            ("app", "status"),
            "managed application finished (done or failed)"),
        EventSpec(
            EV_APP_EXPAND, "event", "repro.hpcm.world",
            ("app", "added", "new_size"),
            "a world grew: fresh ranks joined at a poll-point"),
        EventSpec(
            EV_APP_SHRINK, "event", "repro.hpcm.world",
            ("app", "removed", "new_size"),
            "a world shrank: a rank retired at a poll-point"),
        EventSpec(
            EV_LIVE_SHIP, "event", "repro.live.node",
            ("task", "dest", "bytes", "ok"),
            "live node checkpointed a task and shipped its state"),
        EventSpec(
            EV_LIVE_RESUME, "event", "repro.live.node",
            ("task", "origin", "hops"),
            "live node received a state blob and resumed the task"),
        EventSpec(
            EV_RESCHEDULER_DEPLOY, "event", "repro.core.rescheduler",
            ("hosts", "policy", "mode"),
            "rescheduler deployed: monitors/commanders/registry wired"),
        EventSpec(
            EV_RESCHEDULER_STOP, "event", "repro.core.rescheduler",
            (),
            "rescheduler stop requested"),
    )
}
