"""A data-intensive workload: scanning a locally-stored dataset.

Exercises the paper's data-locality consideration (§5.3): "data access
locality is another important issue ... If a process involves a lot in
a local data access, the process is not to be migrated for slight
performance degradation.  These features have been enclosed in the
*application schema*."

The app scans a dataset resident on its host's disk in passes; its
schema carries a high ``data_locality`` weight, so the victim selector
skips it in favour of compute-bound candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List

import numpy as np

from ..hpcm.app import MigratableApp
from ..hpcm.errors import RepartitionError
from ..schema import ApplicationSchema, Characteristics
from ..sim.rng import seeded_generator

#: World size beyond which extra scanners saturate the shared storage
#: and stop helping (the I/O plateau).
IO_SATURATION = 4


@dataclass
class ScanState:
    """Live state of the scanner."""

    dataset_bytes: int
    passes_total: int
    chunk_bytes: int
    scan_rate: float  # bytes per CPU-second (disk-bound)
    offset: int = 0
    passes_done: int = 0
    #: Rolling checksum over simulated records (real arithmetic).
    digest: int = 0
    rng: np.random.Generator = field(
        default_factory=lambda: seeded_generator(0)
    )


class DataScanApp(MigratableApp):
    """Repeated full scans over a host-local dataset."""

    name = "data_scan"

    def create_state(self, params: dict, rng: Any) -> ScanState:
        dataset = int(params.get("dataset_bytes", 64 * 2**20))
        passes = int(params.get("passes", 2))
        chunk = int(params.get("chunk_bytes", 8 * 2**20))
        scan_rate = float(params.get("scan_rate", 20e6))
        seed = int(params.get("seed", 0))
        if dataset < 1 or passes < 1 or chunk < 1 or scan_rate <= 0:
            raise ValueError("dataset/passes/chunk/scan_rate invalid")
        return ScanState(
            dataset_bytes=dataset,
            passes_total=passes,
            chunk_bytes=chunk,
            scan_rate=scan_rate,
            rng=seeded_generator(seed),
        )

    def run_step(self, state: ScanState, ctx: Any):
        """Scan one chunk (a poll-point per chunk)."""
        chunk = min(state.chunk_bytes,
                    state.dataset_bytes - state.offset)
        # Real work over a deterministic "record" sample of the chunk.
        records = state.rng.integers(0, 2**32, size=256, dtype=np.uint64)
        state.digest = int(
            (state.digest + int(records.sum())) % (2**63)
        )
        # Past the saturation point extra ranks contend for the shared
        # storage: each scan slows by world_size / IO_SATURATION.
        stretch = max(1.0, ctx.world_size / IO_SATURATION)
        yield ctx.compute(chunk / state.scan_rate * stretch, label="scan")
        state.offset += chunk
        if state.offset >= state.dataset_bytes:
            state.offset = 0
            state.passes_done += 1
        return state.passes_done < state.passes_total

    def finalize(self, state: ScanState) -> int:
        return state.digest

    def default_schema(self) -> ApplicationSchema:
        return ApplicationSchema(
            name=self.name,
            characteristics=Characteristics.DATA,
            data_locality=0.9,  # heavy local I/O: avoid migrating
        )

    def efficiency_curve(self) -> tuple:
        # Linear until the shared storage saturates, then a plateau:
        # n scanners past IO_SATURATION do IO_SATURATION's worth of work.
        return tuple(
            round(min(1.0, IO_SATURATION / n), 4) for n in range(1, 9)
        )

    def repartition(
        self, states: List[ScanState], new_size: int,
        params: dict, rng: Any,
    ) -> List[ScanState]:
        """Pool the un-scanned bytes, deal them out as single passes."""
        remaining = sum(
            (s.passes_total - s.passes_done) * s.dataset_bytes - s.offset
            for s in states
        )
        if remaining < new_size:
            raise RepartitionError(
                f"cannot split {remaining} bytes over {new_size} ranks"
            )
        digest = sum(s.digest for s in states) % (2**63)
        base, extra = divmod(remaining, new_size)
        seed = int(params.get("seed", 0))
        out: List[ScanState] = []
        for i in range(new_size):
            share = base + (1 if i < extra else 0)
            out.append(replace(
                states[i] if i < len(states) else states[0],
                dataset_bytes=share,
                passes_total=1,
                passes_done=0,
                offset=0,
                digest=digest if i == 0 else 0,
                rng=(states[i].rng if i < len(states)
                     else seeded_generator(seed + 10_000 * i + 777)),
            ))
        return out

    @staticmethod
    def expected_digest(params: dict) -> int:
        """Ground truth digest (for migration-invariance checks)."""
        state = DataScanApp().create_state(params, None)
        digest = 0
        rng = seeded_generator(int(params.get("seed", 0)))
        steps_per_pass = -(-state.dataset_bytes // state.chunk_bytes)
        for _ in range(state.passes_total * steps_per_pass):
            records = rng.integers(0, 2**32, size=256, dtype=np.uint64)
            digest = (digest + int(records.sum())) % (2**63)
        return digest
