"""Migration-enabled applications used by the experiments.

* :class:`TestTreeApp` — the paper's evaluation application;
* :class:`StencilApp` — multi-rank Jacobi with halo exchange;
* :class:`MonteCarloPiApp` — embarrassingly parallel π estimation.
"""

from .datascan import DataScanApp, ScanState
from .montecarlo import MonteCarloPiApp, PiState
from .stencil import StencilApp, StencilState
from .test_tree import TestTreeApp, TreeState

__all__ = [
    "DataScanApp",
    "MonteCarloPiApp",
    "PiState",
    "ScanState",
    "StencilApp",
    "StencilState",
    "TestTreeApp",
    "TreeState",
]
