"""Monte-Carlo π — an embarrassingly parallel multi-rank workload.

Each rank draws batches of points per step (poll-points between
batches) and the ranks combine partial counts with an ``allreduce`` at
the end.  Used to exercise migration of one rank of a cooperating MPI
job whose other ranks keep computing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List

import numpy as np

from ..hpcm.app import MigratableApp
from ..hpcm.errors import RepartitionError
from ..schema import ApplicationSchema, Characteristics
from ..sim.rng import seeded_generator


@dataclass
class PiState:
    """Per-rank live state."""

    batches_total: int
    batch_size: int
    sample_cost: float
    batches_done: int = 0
    inside: int = 0
    total: int = 0
    pi_estimate: float = 0.0
    rng: np.random.Generator = field(
        default_factory=lambda: seeded_generator(0)
    )


class MonteCarloPiApp(MigratableApp):
    """Estimate π by rejection sampling in parallel."""

    name = "mc_pi"

    def __init__(self, rank: int = 0):
        self.my_rank = rank

    def create_state(self, params: dict, rng: Any) -> PiState:
        batches = int(params.get("batches", 8))
        batch_size = int(params.get("batch_size", 10_000))
        sample_cost = float(params.get("sample_cost", 1e-7))
        seed = int(params.get("seed", 0))
        if batches < 1 or batch_size < 1:
            raise ValueError("batches and batch_size must be >= 1")
        return PiState(
            batches_total=batches,
            batch_size=batch_size,
            sample_cost=sample_cost,
            rng=seeded_generator(seed + 10_000 * self.my_rank),
        )

    def run_step(self, state: PiState, ctx: Any):
        pts = state.rng.random((state.batch_size, 2))
        state.inside += int(((pts ** 2).sum(axis=1) <= 1.0).sum())
        state.total += state.batch_size
        yield ctx.compute(
            state.batch_size * state.sample_cost, label="mc-batch"
        )
        state.batches_done += 1
        if state.batches_done < state.batches_total:
            return True
        # Final combine across the world.
        inside, total = yield from ctx.comm.allreduce(
            (state.inside, state.total),
            op=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        state.pi_estimate = 4.0 * inside / total
        return False

    def finalize(self, state: PiState) -> float:
        return state.pi_estimate

    def default_schema(self) -> ApplicationSchema:
        return ApplicationSchema(
            name=self.name,
            characteristics=Characteristics.COMPUTE,
        )

    def efficiency_curve(self) -> tuple:
        # Embarrassingly parallel: only the final allreduce is shared
        # work, so efficiency decays ~1% per extra rank.
        return tuple(round(1.0 - 0.01 * (n - 1), 4) for n in range(1, 9))

    def repartition(
        self, states: List[PiState], new_size: int,
        params: dict, rng: Any,
    ) -> List[PiState]:
        """Merge the counts, deal the remaining batches out evenly."""
        if any(s.batches_done >= s.batches_total for s in states):
            raise RepartitionError("a rank already entered its combine")
        remaining = sum(s.batches_total - s.batches_done for s in states)
        if new_size > remaining:
            raise RepartitionError(
                f"cannot split {remaining} batches over {new_size} ranks"
            )
        base, extra = divmod(remaining, new_size)
        seed = int(params.get("seed", 0))
        # All partial counts fold into rank 0 so no sample is lost no
        # matter which rank later retires; the final allreduce still
        # sees the global totals.
        inside = sum(s.inside for s in states)
        total = sum(s.total for s in states)
        out: List[PiState] = []
        for i in range(new_size):
            share = base + (1 if i < extra else 0)
            out.append(replace(
                states[i] if i < len(states) else states[0],
                batches_total=share,
                batches_done=0,
                inside=inside if i == 0 else 0,
                total=total if i == 0 else 0,
                rng=(states[i].rng if i < len(states)
                     else seeded_generator(seed + 10_000 * i + 777)),
            ))
        return out
