"""The paper's evaluation application, ``test_tree``.

"A computational intensive migration-enabled application named
*test_tree*, which creates binary trees with specified number of
levels, assigns a random number to each node of the trees, sorts the
trees and computes the sum of all the tree nodes." (§5)

Following that sentence's order, the application first **builds** all
trees (assigning random node values), then **sorts** each tree, then
**sums** them — one tree per poll-point-separated step.  The trees are
real heap-shaped numpy arrays, so the application's memory state (what
a migration must move) grows as trees are built and shrinks as the sum
phase releases them, and the migrated results are bit-identical to an
unmigrated run.

``node_cost`` scales the *simulated* CPU-seconds per node so that
experiment durations can match the paper's Sun Blade timings without
burning wall-clock time; the array arithmetic itself is still executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List

import numpy as np

from ..hpcm.app import MigratableApp
from ..hpcm.errors import RepartitionError
from ..schema import ApplicationSchema, Characteristics
from ..sim.rng import seeded_generator

#: Phase progression (used when a reshape hands a rank an empty share).
_NEXT_PHASE = {"build": "sort", "sort": "sum", "sum": "done"}


def _deal(items: list, n: int) -> List[list]:
    """Split ``items`` into ``n`` contiguous near-equal shares."""
    base, extra = divmod(len(items), n)
    shares, start = [], 0
    for i in range(n):
        stop = start + base + (1 if i < extra else 0)
        shares.append(items[start:stop])
        start = stop
    return shares


def _spread(count: int, n: int) -> List[int]:
    """Split an integer workload count into ``n`` near-equal parts."""
    base, extra = divmod(count, n)
    return [base + (1 if i < extra else 0) for i in range(n)]


@dataclass
class TreeState:
    """Complete live state of test_tree (picklable)."""

    levels: int
    trees_total: int
    node_cost: float
    phase: str = "build"  # build → sort → sum → done
    index: int = 0        # next tree to process in the current phase
    trees: List = field(default_factory=list)
    checksum: float = 0.0
    #: RNG travels with the state so results are migration-invariant.
    rng: np.random.Generator = field(
        default_factory=lambda: seeded_generator(0)
    )

    @property
    def n_nodes(self) -> int:
        return 2 ** self.levels - 1

    @property
    def resident_bytes(self) -> int:
        """Current in-memory tree data (the dominant migration payload)."""
        return sum(t.nbytes for t in self.trees if t is not None)


class TestTreeApp(MigratableApp):
    """Build all trees, sort each, sum all — one tree per step."""

    name = "test_tree"

    def create_state(self, params: dict, rng: Any) -> TreeState:
        levels = int(params.get("levels", 10))
        trees = int(params.get("trees", 4))
        node_cost = float(params.get("node_cost", 1e-5))
        seed = int(params.get("seed", 0))
        if levels < 1 or trees < 1 or node_cost < 0:
            raise ValueError("levels/trees must be >= 1, node_cost >= 0")
        return TreeState(
            levels=levels,
            trees_total=trees,
            node_cost=node_cost,
            rng=seeded_generator(seed),
        )

    def run_step(self, state: TreeState, ctx: Any):
        n = state.n_nodes
        # A reshape can hand a rank an empty share of some phase;
        # fast-forward through exhausted phases instead of indexing
        # past the end.  (Unreachable for rigid runs: create_state
        # requires trees >= 1.)
        while (state.phase != "done"
               and state.index >= state.trees_total):
            state.phase = _NEXT_PHASE[state.phase]
            state.index = 0
        if state.phase == "done":
            return False
        if state.phase == "build":
            # A heap-shaped complete binary tree as a flat array.
            state.trees.append(state.rng.random(n))
            yield ctx.compute(n * state.node_cost, label="tree-build")
            state.index += 1
            if state.index >= state.trees_total:
                state.phase, state.index = "sort", 0
            return True
        if state.phase == "sort":
            state.trees[state.index] = np.sort(state.trees[state.index])
            log_n = max(1.0, np.log2(n))
            yield ctx.compute(n * log_n * state.node_cost,
                              label="tree-sort")
            state.index += 1
            if state.index >= state.trees_total:
                state.phase, state.index = "sum", 0
            return True
        # sum phase: fold in one tree and release it.
        state.checksum += float(state.trees[state.index].sum())
        state.trees[state.index] = None
        yield ctx.compute(n * state.node_cost, label="tree-sum")
        state.index += 1
        if state.index >= state.trees_total:
            state.phase = "done"
            return False
        return True

    def finalize(self, state: TreeState) -> float:
        return state.checksum

    def default_schema(self) -> ApplicationSchema:
        return ApplicationSchema(
            name=self.name,
            characteristics=Characteristics.COMPUTE,
        )

    def efficiency_curve(self) -> tuple:
        # Trees are independent, but every reshape re-deals whole trees
        # and the checksums must merge — a small per-rank coordination
        # tax on top of near-linear scaling.
        return tuple(
            round(1.0 / (1.0 + 0.05 * (n - 1)), 4) for n in range(1, 9)
        )

    def repartition(
        self, states: List[TreeState], new_size: int,
        params: dict, rng: Any,
    ) -> List[TreeState]:
        """Re-deal whole trees across ranks (same-phase worlds only)."""
        phases = {s.phase for s in states}
        if len(phases) != 1:
            raise RepartitionError("test_tree ranks are out of phase")
        phase = next(iter(phases))
        if phase == "done":
            raise RepartitionError("nothing left to repartition")
        checksum = float(sum(s.checksum for s in states))
        seed = int(params.get("seed", 0))
        if phase == "build":
            built = [t for s in states for t in s.trees]
            pending = sum(s.trees_total - s.index for s in states)
            shares = _deal(built, new_size)
            extra = _spread(pending, new_size)
            todo_shares = None
        elif phase == "sort":
            done = [t for s in states for t in s.trees[:s.index]]
            todo = [t for s in states for t in s.trees[s.index:]]
            shares = _deal(done, new_size)
            todo_shares = _deal(todo, new_size)
            extra = None
        else:  # sum: only the unconsumed trees remain
            todo = [
                t for s in states for t in s.trees[s.index:]
                if t is not None
            ]
            shares = _deal(todo, new_size)
            todo_shares = None
            extra = None
        out: List[TreeState] = []
        for i in range(new_size):
            trees = list(shares[i])
            if phase == "build":
                index = len(trees)
                total = index + extra[i]
            elif phase == "sort":
                index = len(trees)
                trees = trees + list(todo_shares[i])
                total = len(trees)
            else:
                index = 0
                total = len(trees)
            out.append(replace(
                states[i] if i < len(states) else states[0],
                phase=phase,
                index=index,
                trees_total=total,
                trees=trees,
                checksum=checksum if i == 0 else 0.0,
                rng=(states[i].rng if i < len(states)
                     else seeded_generator(seed + 10_000 * i + 777)),
            ))
        return out

    @staticmethod
    def expected_checksum(params: dict) -> float:
        """Ground truth computed directly (for migration-invariance
        tests): the same RNG stream and operations, no middleware."""
        levels = int(params.get("levels", 10))
        trees = int(params.get("trees", 4))
        seed = int(params.get("seed", 0))
        rng = seeded_generator(seed)
        n = 2 ** levels - 1
        built = [rng.random(n) for _ in range(trees)]
        return float(sum(np.sort(t).sum() for t in built))

    @staticmethod
    def total_work(params: dict) -> float:
        """Total simulated CPU-seconds the app needs (reference speed)."""
        levels = int(params.get("levels", 10))
        trees = int(params.get("trees", 4))
        node_cost = float(params.get("node_cost", 1e-5))
        n = 2 ** levels - 1
        log_n = max(1.0, np.log2(n))
        return trees * (n + n * log_n + n) * node_cost

    @staticmethod
    def params_for_duration(
        duration: float, levels: int = 11, step_seconds: float = None
    ) -> dict:
        """Parameters giving ~``duration`` reference CPU-seconds.

        Keeps per-step times in the sub-to-few-second range the paper's
        poll-point measurements imply (≈1.4 s to the nearest
        poll-point under load).
        """
        n = 2 ** levels - 1
        log_n = max(1.0, np.log2(n))
        work_per_tree_unitcost = n * (2 + log_n)
        # Aim for a sort step (the longest) of ~2.5 s free by default.
        target_sort = step_seconds if step_seconds else 2.5
        node_cost = target_sort / (n * log_n)
        trees = max(1, round(duration /
                             (work_per_tree_unitcost * node_cost)))
        return {"levels": levels, "trees": int(trees),
                "node_cost": float(node_cost)}
