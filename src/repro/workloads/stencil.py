"""A multi-rank Jacobi stencil — the classic MPI workload.

Each rank owns a strip of a 2-D grid and exchanges halo rows with its
neighbours every iteration, then applies the 4-point Jacobi update.
Iterations are poll-points, so any rank can migrate between sweeps;
the halo exchange keeps working because message routing follows the
communicator's rank → process mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..hpcm.app import MigratableApp
from ..schema import ApplicationSchema, Characteristics

_HALO_TAG_UP = 101
_HALO_TAG_DOWN = 102


@dataclass
class StencilState:
    """Per-rank live state of the Jacobi solver."""

    rows: int
    cols: int
    iterations_total: int
    cell_cost: float
    iteration: int = 0
    grid: Optional[np.ndarray] = None
    last_residual: float = float("inf")


class StencilApp(MigratableApp):
    """Jacobi iteration over a strip-decomposed grid."""

    name = "stencil"

    def __init__(self, rank: int = 0):
        self.my_rank = rank

    def create_state(self, params: dict, rng: Any) -> StencilState:
        rows = int(params.get("rows", 64))
        cols = int(params.get("cols", 64))
        iterations = int(params.get("iterations", 10))
        cell_cost = float(params.get("cell_cost", 1e-7))
        if rows < 1 or cols < 3 or iterations < 1:
            raise ValueError("grid too small or no iterations")
        state = StencilState(
            rows=rows,
            cols=cols,
            iterations_total=iterations,
            cell_cost=cell_cost,
        )
        # Interior zero with hot boundary columns; each rank's strip
        # includes two halo rows (top and bottom).
        grid = np.zeros((rows + 2, cols))
        grid[:, 0] = 100.0
        grid[:, -1] = 100.0
        state.grid = grid
        return state

    def run_step(self, state: StencilState, ctx: Any):
        comm = ctx.comm
        rank, size = comm.rank, comm.size
        grid = state.grid

        # Halo exchange with the neighbouring strips.
        if rank > 0:
            yield from comm.send(grid[1].copy(), dest=rank - 1,
                                 tag=_HALO_TAG_UP)
            grid[0] = yield from comm.recv(source=rank - 1,
                                           tag=_HALO_TAG_DOWN)
        if rank < size - 1:
            yield from comm.send(grid[-2].copy(), dest=rank + 1,
                                 tag=_HALO_TAG_DOWN)
            grid[-1] = yield from comm.recv(source=rank + 1,
                                            tag=_HALO_TAG_UP)

        # Jacobi sweep (real arithmetic + simulated CPU cost).
        new_interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1]
            + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        state.last_residual = float(
            np.abs(new_interior - grid[1:-1, 1:-1]).max()
        )
        grid[1:-1, 1:-1] = new_interior
        yield ctx.compute(
            state.rows * state.cols * state.cell_cost, label="jacobi"
        )
        state.iteration += 1
        return state.iteration < state.iterations_total

    def finalize(self, state: StencilState) -> dict:
        return {
            "iterations": state.iteration,
            "residual": state.last_residual,
            "mean": float(state.grid[1:-1].mean()),
        }

    def default_schema(self) -> ApplicationSchema:
        return ApplicationSchema(
            name=self.name,
            characteristics=Characteristics.COMMUNICATION,
        )
