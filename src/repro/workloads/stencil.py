"""A multi-rank Jacobi stencil — the classic MPI workload.

Each rank owns a strip of a 2-D grid and exchanges halo rows with its
neighbours every iteration, then applies the 4-point Jacobi update.
Iterations are poll-points, so any rank can migrate between sweeps;
the halo exchange keeps working because message routing follows the
communicator's rank → process mapping.

The stencil is *malleable*: between sweeps the strips concatenate into
the global interior and re-split into any number of near-equal strips
(:meth:`StencilApp.repartition`).  Its declared parallel efficiency
follows the strip decomposition's surface-to-volume ratio — per-rank
halo traffic is constant while per-rank compute shrinks as 1/n, so
``eff(n) = V / (V + 2n)`` with ``V`` the compute-to-halo work ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional

import numpy as np

from ..hpcm.app import MigratableApp
from ..hpcm.errors import RepartitionError
from ..schema import ApplicationSchema, Characteristics

_HALO_TAG_UP = 101
_HALO_TAG_DOWN = 102


@dataclass
class StencilState:
    """Per-rank live state of the Jacobi solver."""

    rows: int
    cols: int
    iterations_total: int
    cell_cost: float
    iteration: int = 0
    grid: Optional[np.ndarray] = None
    last_residual: float = float("inf")


class StencilApp(MigratableApp):
    """Jacobi iteration over a strip-decomposed grid."""

    name = "stencil"

    def __init__(self, rank: int = 0):
        self.my_rank = rank

    def create_state(self, params: dict, rng: Any) -> StencilState:
        rows = int(params.get("rows", 64))
        cols = int(params.get("cols", 64))
        iterations = int(params.get("iterations", 10))
        cell_cost = float(params.get("cell_cost", 1e-7))
        if rows < 1 or cols < 3 or iterations < 1:
            raise ValueError("grid too small or no iterations")
        state = StencilState(
            rows=rows,
            cols=cols,
            iterations_total=iterations,
            cell_cost=cell_cost,
        )
        # Interior zero with hot boundary columns; each rank's strip
        # includes two halo rows (top and bottom).
        grid = np.zeros((rows + 2, cols))
        grid[:, 0] = 100.0
        grid[:, -1] = 100.0
        state.grid = grid
        return state

    def run_step(self, state: StencilState, ctx: Any):
        comm = ctx.comm
        rank, size = comm.rank, comm.size
        grid = state.grid

        # Halo exchange with the neighbouring strips.
        if rank > 0:
            yield from comm.send(grid[1].copy(), dest=rank - 1,
                                 tag=_HALO_TAG_UP)
            grid[0] = yield from comm.recv(source=rank - 1,
                                           tag=_HALO_TAG_DOWN)
        if rank < size - 1:
            yield from comm.send(grid[-2].copy(), dest=rank + 1,
                                 tag=_HALO_TAG_DOWN)
            grid[-1] = yield from comm.recv(source=rank + 1,
                                            tag=_HALO_TAG_UP)

        # Jacobi sweep (real arithmetic + simulated CPU cost).
        new_interior = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1]
            + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        state.last_residual = float(
            np.abs(new_interior - grid[1:-1, 1:-1]).max()
        )
        grid[1:-1, 1:-1] = new_interior
        yield ctx.compute(
            state.rows * state.cols * state.cell_cost, label="jacobi"
        )
        state.iteration += 1
        return state.iteration < state.iterations_total

    def finalize(self, state: StencilState) -> dict:
        return {
            "iterations": state.iteration,
            "residual": state.last_residual,
            "mean": float(state.grid[1:-1].mean()),
        }

    def default_schema(self) -> ApplicationSchema:
        return ApplicationSchema(
            name=self.name,
            characteristics=Characteristics.COMMUNICATION,
        )

    #: Compute-to-halo work ratio of one strip (surface/volume model).
    _VOLUME_RATIO = 64.0

    def efficiency_curve(self) -> tuple:
        return tuple(
            round(self._VOLUME_RATIO / (self._VOLUME_RATIO + 2.0 * n), 4)
            for n in range(1, 9)
        )

    def repartition(
        self, states: List[StencilState], new_size: int,
        params: dict, rng: Any,
    ) -> List[StencilState]:
        """Concatenate the strips' interiors, re-split near-equally."""
        iterations = {s.iteration for s in states}
        if len(iterations) != 1:
            raise RepartitionError("stencil ranks are out of lockstep")
        interior = np.concatenate([s.grid[1:-1] for s in states])
        total_rows = interior.shape[0]
        if new_size > total_rows:
            raise RepartitionError(
                f"cannot split {total_rows} rows over {new_size} ranks"
            )
        base, extra = divmod(total_rows, new_size)
        template = states[0]
        out: List[StencilState] = []
        start = 0
        for i in range(new_size):
            rows = base + (1 if i < extra else 0)
            stop = start + rows
            grid = np.zeros((rows + 2, template.cols))
            grid[:, 0] = 100.0
            grid[:, -1] = 100.0
            grid[1:-1] = interior[start:stop]
            # Halo rows come from the neighbouring strips' edges; the
            # outermost halos keep the boundary condition.
            if start > 0:
                grid[0] = interior[start - 1]
            if stop < total_rows:
                grid[-1] = interior[stop]
            out.append(replace(template, rows=rows, grid=grid))
            start = stop
        return out
