"""The rescheduler façade: deploy the whole runtime system on a cluster.

Wires one monitor + one commander per host and a (possibly
hierarchical) registry/scheduler, exactly the Figure 1 topology, and
provides helpers for launching migration-enabled applications under
its management.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..cluster.builder import Cluster
from ..commander.commander import Commander
from ..hpcm.app import MigratableApp
from ..hpcm.runtime import HpcmRuntime, launch as hpcm_launch
from ..hpcm.runtime import launch_world as hpcm_launch_world
from ..hpcm.world import HpcmWorld, launch_malleable_world
from ..monitor.hub import MonitorHub
from ..monitor.monitor import DEFAULT_CYCLE_COST, DEFAULT_INTERVAL, Monitor
from ..monitor.selector import collect_process_info
from ..mpi.runtime import MpiRuntime
from ..protocol.transport import EndpointRegistry
from ..registry.registry import RegistryScheduler
from ..registry.strategies import first_fit
from ..rules.model import RuleSet
from ..trace import get_tracer
from ..trace.events import EV_RESCHEDULER_DEPLOY, EV_RESCHEDULER_STOP
from .policy import MigrationPolicy, policy_1


@dataclass
class ReschedulerConfig:
    """All deployment knobs in one place."""

    #: Monitoring interval in seconds (paper: 10 s).
    interval: float = DEFAULT_INTERVAL
    #: Consecutive overloaded samples required before reporting
    #: overloaded (the warm-up that avoids fault migrations).
    sustain: int = 3
    #: CPU-seconds one monitoring cycle costs.
    cycle_cost: float = DEFAULT_CYCLE_COST
    #: Soft-state lease (seconds without a push → unavailable).
    lease: float = 35.0
    #: Destination-selection strategy.
    strategy: Callable = first_fit
    #: Seconds between repeat migrate commands for one host.
    command_cooldown: float = 30.0
    #: Write real temp files for destination addresses.
    use_tempfile: bool = False
    #: Extra rule set evaluated by every monitor.
    ruleset: Optional[RuleSet] = None
    #: Per-state monitoring intervals (overrides ``interval``).
    intervals_by_state: Dict = field(default_factory=dict)
    #: Registration model (§3.2): "push" (the paper's soft-state
    #: choice) or "pull" (the registry queries on its own schedule).
    mode: str = "push"
    #: Decision-plane mode: "auto" (vectorized over the host-state
    #: matrix), "scalar" (record-list oracle), or "verify" (both, with
    #: a raise on divergence) — see docs/decision_plane.md.
    vector_mode: str = "auto"
    #: Host-plane mode for the monitoring tier: "auto" batches the
    #: cluster's analytic rows under one MonitorHub, "verify" also
    #: scalar-classifies each row and raises on divergence, "scalar"
    #: refuses analytic rows (per-host monitors only — the oracle).
    host_plane: str = "auto"


class Rescheduler:
    """Deployed rescheduler runtime on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        policy: Optional[MigrationPolicy] = None,
        config: Optional[ReschedulerConfig] = None,
        registry_host: Optional[str] = None,
        monitored_hosts: Optional[List[str]] = None,
        directory: Optional[EndpointRegistry] = None,
        parent_address: Optional[str] = None,
        mpi: Optional[MpiRuntime] = None,
        registry_name: str = "registry",
        schema_store: Optional[Any] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        # Deployment is where the ambient tracer meets a simulation
        # clock; spans opened by env-free layers stamp correctly from
        # here on.
        tracer = get_tracer()
        if tracer.enabled:
            tracer.bind_clock(lambda: self.env.now)
        self.policy = policy or policy_1()
        self.config = config or ReschedulerConfig()
        self.directory = directory or EndpointRegistry()
        self.mpi = mpi or MpiRuntime(cluster)
        #: Optional cross-run schema persistence (self-adjustment).
        self.schema_store = schema_store

        host_names = (
            monitored_hosts if monitored_hosts is not None
            else [h.name for h in cluster]
        )
        registry_host = registry_host or (
            host_names[0] if host_names else cluster.host_list()[0].name
        )

        self.registry = RegistryScheduler(
            cluster.host(registry_host),
            self.directory,
            name=registry_name,
            lease=self.config.lease,
            policy=self.policy,
            strategy=self.config.strategy,
            rng=cluster.rng.stream("registry"),
            command_cooldown=self.config.command_cooldown,
            parent_address=parent_address,
            mode=self.config.mode,
            poll_interval=self.config.interval,
            vector_mode=self.config.vector_mode,
        )
        # The paper's first fit scans "the machine list": seed the
        # registry's table in deployment order so the scan order is the
        # configured list, not the race of first Register arrivals.
        for name in host_names:
            self.registry.table.register(
                name, cluster.host(name).static_info.as_dict()
            )
        # Partition the host list: analytic plane rows are monitored in
        # batch by one MonitorHub; backed hosts get the per-host
        # monitor/commander pair exactly as before.
        plane = getattr(cluster, "plane", None)
        analytic_names = [
            name for name in host_names
            if plane is not None
            and plane.arrays.row_of(name) is not None
            and plane.arrays.analytic[plane.arrays.row_of(name)]
        ]
        if analytic_names and self.config.host_plane == "scalar":
            raise ValueError(
                "host_plane='scalar' cannot monitor analytic hosts "
                f"(found {len(analytic_names)}); use auto or verify"
            )
        backed_names = [n for n in host_names if n not in set(analytic_names)]
        self.hub: Optional[MonitorHub] = None
        if analytic_names:
            self.hub = MonitorHub(
                plane,
                analytic_names,
                endpoint_host=cluster.host(registry_host),
                directory=self.directory,
                registry_address=self.registry.address,
                table=self.registry.table,
                ruleset=self.config.ruleset,
                policy=self.policy,
                interval=self.config.interval,
                intervals_by_state=self.config.intervals_by_state,
                sustain=self.config.sustain,
                cycle_cost=self.config.cycle_cost,
                rng=cluster.rng.stream("monitorhub"),
                verify=(self.config.host_plane == "verify") or None,
                # Analytic rows still host real process tables here, so
                # overload reports carry the same victim/world fields a
                # per-host monitor would send.
                processes_for=lambda name: [
                    info.as_dict()
                    for info in collect_process_info(cluster.host(name))
                ],
            )
        self.monitors: Dict[str, Monitor] = {}
        self.commanders: Dict[str, Commander] = {}
        for name in backed_names:
            host = cluster.host(name)
            self.monitors[name] = Monitor(
                host,
                self.directory,
                registry_address=self.registry.address,
                ruleset=self.config.ruleset,
                policy=self.policy,
                interval=self.config.interval,
                intervals_by_state=self.config.intervals_by_state,
                sustain=self.config.sustain,
                cycle_cost=self.config.cycle_cost,
                rng=cluster.rng.stream(f"monitor:{name}"),
                mode=self.config.mode,
            )
            self.commanders[name] = Commander(
                host,
                self.directory,
                use_tempfile=self.config.use_tempfile,
            )
        self.apps: List[HpcmRuntime] = []
        self.worlds: List[HpcmWorld] = []
        if tracer.enabled:
            tracer.event(
                EV_RESCHEDULER_DEPLOY, t=self.env.now,
                host=registry_host, hosts=len(host_names),
                policy=getattr(self.policy, "name", ""),
                mode=self.config.mode,
            )

    # -- application management -----------------------------------------
    def launch_app(
        self,
        app: MigratableApp,
        host_name: str,
        params: Optional[dict] = None,
        **kwargs: Any,
    ) -> HpcmRuntime:
        """Start a migration-enabled application under management.

        With a :class:`~repro.schema.SchemaStore` configured, the
        freshest schema for the application (folding in the statistics
        of previous runs) is used unless the caller passes one, and the
        post-run schema is recorded back — the paper's self-adjustment
        loop.
        """
        store = self.schema_store
        if store is not None and "schema" not in kwargs:
            stored = store.get(app.name)
            if stored is not None:
                kwargs["schema"] = stored
        runtime = hpcm_launch(
            self.mpi,
            app,
            self.cluster.host(host_name),
            params=params,
            rng=self.cluster.rng.stream(f"app:{app.name}:{len(self.apps)}"),
            **kwargs,
        )
        self.apps.append(runtime)
        if store is not None:
            def _record(event):
                if event._ok:
                    store.record_run(runtime.schema)
            runtime.done.callbacks.append(_record)
        return runtime

    def launch_mpi_app(
        self,
        app_factory: Callable[[int], MigratableApp],
        host_names: List[str],
        params: Optional[dict] = None,
        **kwargs: Any,
    ) -> List[HpcmRuntime]:
        """Start a multi-rank migration-enabled MPI application."""
        runtimes = hpcm_launch_world(
            self.mpi,
            app_factory,
            [self.cluster.host(name) for name in host_names],
            params=params,
            rng=self.cluster.rng.stream(f"mpi-app:{len(self.apps)}"),
            **kwargs,
        )
        self.apps.extend(runtimes)
        return runtimes

    def launch_malleable_app(
        self,
        app_factory: Callable[[int], MigratableApp],
        host_names: List[str],
        params: Optional[dict] = None,
        **kwargs: Any,
    ) -> HpcmWorld:
        """Start a multi-rank application whose world can be reshaped.

        The registry may answer overload on a member host with an
        ``ExpandCommand``/``ShrinkCommand`` instead of (or before) a
        1:1 migration; the returned :class:`~repro.hpcm.world.HpcmWorld`
        records every reshape in ``world.reconfigurations``.
        """
        world = launch_malleable_world(
            self.mpi,
            app_factory,
            [self.cluster.host(name) for name in host_names],
            params=params,
            rng=self.cluster.rng.stream(f"mpi-app:{len(self.apps)}"),
            **kwargs,
        )
        self.apps.extend(world.runtimes)
        self.worlds.append(world)
        return world

    # -- observability ----------------------------------------------------
    @property
    def decisions(self) -> list:
        return self.registry.decisions

    @property
    def reconfigurations(self) -> list:
        """Registry-side reconfiguration records (N:M decisions)."""
        return self.registry.reconfigurations

    def migration_records(self) -> list:
        return [rec for app in self.apps for rec in app.migrations]

    def reconfiguration_records(self) -> list:
        """World-side reshape records, across every malleable world."""
        return [rec for world in self.worlds
                for rec in world.reconfigurations]

    def stop(self) -> None:
        """Stop all entities (monitors unregister on their next tick)."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(EV_RESCHEDULER_STOP, t=self.env.now,
                         host=self.registry.host.name)
        if self.hub is not None:
            self.hub.stop()
        for monitor in self.monitors.values():
            monitor.stop()
        for commander in self.commanders.values():
            commander.stop()
        self.registry.stop()
