"""Merged event timeline of a rescheduler deployment.

Collects what every entity already logs — registry decisions,
commander deliveries, migration phase records, application lifecycle —
into one time-ordered trace.  Useful for debugging experiments and for
narrating what the autonomic loop did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    t: float
    kind: str          # decision / command / migration-* / app-*
    host: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[t={self.t:10.3f}] {self.kind:18s} {self.host:8s} {parts}"


def build_timeline(rescheduler: Any) -> List[TraceEvent]:
    """All recorded events of a deployment, time-ordered."""
    events: List[TraceEvent] = []

    for decision in rescheduler.decisions:
        events.append(TraceEvent(
            t=decision.at,
            kind="decision",
            host=decision.source,
            detail={
                "dest": decision.dest or "none",
                "pid": decision.pid,
                "decision_ms": round(decision.decision_seconds * 1e3, 2),
                "escalated": decision.escalated,
            },
        ))

    for name, commander in rescheduler.commanders.items():
        for entry in commander.log:
            events.append(TraceEvent(
                t=entry.at,
                kind="command",
                host=name,
                detail={
                    "pid": entry.pid,
                    "dest": entry.dest,
                    "delivered": entry.delivered,
                    **({"error": entry.detail} if entry.detail else {}),
                },
            ))

    for app in rescheduler.apps:
        if app.started_at is not None:
            events.append(TraceEvent(
                t=app.started_at, kind="app-start",
                host=_first_host(app),
                detail={"app": app.app.name},
            ))
        if app.finished_at is not None:
            events.append(TraceEvent(
                t=app.finished_at, kind="app-finish",
                host=app.host.name,
                detail={"app": app.app.name, "status": app.status},
            ))
        for rec in app.migrations:
            events.append(TraceEvent(
                t=rec.pollpoint_at, kind="migration-start",
                host=rec.source,
                detail={"app": app.app.name, "dest": rec.dest,
                        "reason": rec.reason or "-"},
            ))
            if rec.succeeded:
                events.append(TraceEvent(
                    t=rec.resumed_at, kind="migration-resume",
                    host=rec.dest,
                    detail={"app": app.app.name,
                            "mb": round(rec.memory_bytes / 2**20, 2)},
                ))
                events.append(TraceEvent(
                    t=rec.completed_at, kind="migration-done",
                    host=rec.dest,
                    detail={"app": app.app.name,
                            "total_s": round(rec.total_seconds, 2)},
                ))
            elif rec.failure:
                events.append(TraceEvent(
                    t=rec.pollpoint_at, kind="migration-failed",
                    host=rec.source,
                    detail={"app": app.app.name, "why": rec.failure},
                ))

    events.sort(key=lambda e: (e.t, e.kind))
    return events


def format_timeline(events: List[TraceEvent],
                    kinds: Optional[set] = None) -> str:
    """Render a (filtered) timeline as plain text."""
    lines = [
        str(event) for event in events
        if kinds is None or event.kind in kinds
    ]
    return "\n".join(lines) if lines else "(no events)"


def _first_host(app: Any) -> str:
    """The host the app started on (before any migration)."""
    if app.migrations:
        return app.migrations[0].source
    return app.host.name
