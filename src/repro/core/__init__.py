"""The paper's primary contribution: the autonomic rescheduling runtime."""

from .policy import (
    KNOWN_METRICS,
    MetricPredicate,
    MigrationPolicy,
    PAPER_POLICIES,
    policy_1,
    policy_2,
    policy_3,
)
from .rescheduler import Rescheduler, ReschedulerConfig
from .timeline import TraceEvent, build_timeline, format_timeline

__all__ = [
    "KNOWN_METRICS",
    "MetricPredicate",
    "MigrationPolicy",
    "PAPER_POLICIES",
    "Rescheduler",
    "ReschedulerConfig",
    "TraceEvent",
    "build_timeline",
    "format_timeline",
    "policy_1",
    "policy_2",
    "policy_3",
]
