"""The paper's primary contribution: the autonomic rescheduling runtime."""

from .policy import (
    KNOWN_METRICS,
    MetricPredicate,
    MigrationPolicy,
    PAPER_POLICIES,
    load_policy_file,
    malleable_policy,
    policy_1,
    policy_2,
    policy_3,
    policy_from_dict,
    policy_to_dict,
    predicate_from_dict,
)
from .rescheduler import Rescheduler, ReschedulerConfig
from .timeline import TraceEvent, build_timeline, format_timeline

__all__ = [
    "KNOWN_METRICS",
    "MetricPredicate",
    "MigrationPolicy",
    "PAPER_POLICIES",
    "Rescheduler",
    "ReschedulerConfig",
    "TraceEvent",
    "build_timeline",
    "format_timeline",
    "load_policy_file",
    "malleable_policy",
    "policy_1",
    "policy_2",
    "policy_3",
    "policy_from_dict",
    "policy_to_dict",
    "predicate_from_dict",
]
