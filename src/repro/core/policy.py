"""Migration policies (paper §5.3).

A policy is a group of rules: *triggers* (any one firing marks the
source overloaded), *source guards* (all must hold for a migration to
be allowed), and *destination conditions* (all must hold on a candidate
host).  The paper's three evaluation policies ship ready-made.

Note on Policy 3's communication clause: the paper lists "the current
incoming/outgoing communication flow is no more than 5 MB/s" under the
migrate-when-any conditions, which read literally would trigger
migration on every idle host.  We implement the evidently intended
semantics — it is a *guard*: an overloaded host may only migrate a
process out while its own communication flow is ≤ 5 MB/s (moving
process state through a saturated NIC would stall both), and a
destination is only eligible while its flow is ≤ 3 MB/s.  This
interpretation reproduces Table 2's outcome (Policy 3 rejects the
communication-busy workstation 2).
"""

from __future__ import annotations

import operator as op_mod
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..rules.model import ComplexRule, SimpleRule

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": op_mod.lt,
    "<=": op_mod.le,
    ">": op_mod.gt,
    ">=": op_mod.ge,
}

#: Metric names predicates may reference (must match SensorSuite keys).
KNOWN_METRICS = frozenset({
    "loadavg1", "loadavg5", "loadavg15", "cpu_util", "cpu_idle_pct",
    "proc_count", "socket_count", "mem_avail_bytes", "mem_avail_pct",
    "vmem_avail_pct", "disk_avail_bytes", "send_kbs", "recv_kbs",
    "comm_mbs",
})


@dataclass(frozen=True)
class MetricPredicate:
    """``metric OP value`` over a status snapshot."""

    metric: str
    op: str
    value: float

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if self.metric not in KNOWN_METRICS:
            raise ValueError(f"unknown metric {self.metric!r}")

    def holds(self, metrics: Dict[str, float]) -> bool:
        """True when the predicate is satisfied (missing metric → False)."""
        value = metrics.get(self.metric)
        if value is None:
            return False
        return _OPS[self.op](float(value), self.value)

    def __str__(self) -> str:
        return f"{self.metric} {self.op} {self.value:g}"


@dataclass(frozen=True)
class MigrationPolicy:
    """A named group of trigger/guard/destination rules."""

    name: str
    enabled: bool = True
    #: Any one firing ⇒ the host wants to migrate out.
    triggers: Tuple[MetricPredicate, ...] = ()
    #: All must hold for the source to actually migrate.
    source_guards: Tuple[MetricPredicate, ...] = ()
    #: All must hold on an eligible destination.
    dest_conditions: Tuple[MetricPredicate, ...] = ()
    #: Destination-selection strategy name (``registry.strategies``).
    strategy: str = "first_fit"
    # -- malleability (docs/malleability.md) --------------------------
    #: Any one firing on an overloaded source ⇒ prefer *growing* the
    #: victim's world onto ``grow_step`` extra hosts over moving it.
    grow_triggers: Tuple[MetricPredicate, ...] = ()
    #: Any one firing on an overloaded source ⇒ prefer *retiring* the
    #: source's rank (vacate the contended host entirely).  Checked
    #: before ``grow_triggers``: the shrink thresholds mark the more
    #: severe condition.
    shrink_triggers: Tuple[MetricPredicate, ...] = ()
    #: Hosts requested per Expand decision (the N in N:M).
    grow_step: int = 1
    #: Policy-level world bounds, intersected with the application
    #: schema's own ``min_world``/``max_world``; ``max_world=0`` means
    #: "no policy cap" (the schema alone rules).  Deliberately *not*
    #: validated here — ``repro lint`` flags min>max as P107 so a bad
    #: policy file is a finding, not a stack trace.
    min_world: int = 1
    max_world: int = 0
    #: Expand only while the victim's declared parallel efficiency at
    #: the grown size stays at or above this floor.
    min_efficiency: float = 0.0

    @property
    def malleable(self) -> bool:
        """Does this policy ever reshape worlds (vs 1:1 migration)?"""
        return bool(self.grow_triggers or self.shrink_triggers)

    def world_cap(self, schema_max: int) -> int:
        """Effective max world: the schema cap, tightened by a
        non-zero policy cap."""
        if self.max_world:
            return min(int(schema_max), self.max_world)
        return int(schema_max)

    def world_floor(self, schema_min: int) -> int:
        """Effective min world: the looser of the two floors wins."""
        return max(int(schema_min), self.min_world)

    def to_rules(self, base_number: int = 100) -> list:
        """Express the triggers in the paper's rule-file vocabulary.

        Returns simple rules (one per trigger) plus a complex OR rule —
        documentation of how policies and the §4 rule engine are two
        views of the same mechanism.
        """
        script_for = {
            "loadavg1": ("loadAvg.sh", "1"),
            "loadavg5": ("loadAvg.sh", "5"),
            "proc_count": ("procCount.sh", ""),
            "comm_mbs": ("netFlow.sh", ""),
            "cpu_idle_pct": ("processorStatus.sh", ""),
            "socket_count": ("ntStatIpv4.sh", "ESTABLISHED"),
        }
        rules = []
        numbers = []
        for i, trig in enumerate(self.triggers):
            script, param = script_for.get(trig.metric,
                                           (f"{trig.metric}.sh", ""))
            number = base_number + i
            numbers.append(number)
            rules.append(
                SimpleRule(
                    number=number,
                    name=f"{self.name}_t{i}",
                    script=script,
                    operator=trig.op if trig.op in ("<", ">") else
                    ("<" if trig.op == "<=" else ">"),
                    busy=trig.value,
                    overloaded=trig.value,
                    description=str(trig),
                    param=param,
                )
            )
        if numbers:
            rules.append(
                ComplexRule(
                    number=base_number + len(numbers),
                    name=f"{self.name}_any",
                    expression=" | ".join(f"r{n}" for n in numbers),
                    rule_numbers=tuple(numbers),
                    description=f"any trigger of {self.name}",
                )
            )
        return rules


# ------------------------------------------------------- (de)serialization
def predicate_from_dict(d: dict) -> MetricPredicate:
    """Build a predicate from ``{"metric": ..., "op": ..., "value": ...}``."""
    try:
        return MetricPredicate(
            metric=str(d["metric"]), op=str(d["op"]), value=float(d["value"])
        )
    except KeyError as exc:
        raise ValueError(f"predicate missing key {exc.args[0]!r}") from None


def policy_from_dict(d: dict) -> MigrationPolicy:
    """Build a policy from its JSON/dict form (``repro lint`` and user
    policy files).  Accepts either the policy mapping itself or a
    wrapper ``{"policy": {...}}``."""
    if "policy" in d and isinstance(d["policy"], dict):
        d = d["policy"]
    unknown = set(d) - {
        "name", "enabled", "triggers", "source_guards", "dest_conditions",
        "strategy", "grow_triggers", "shrink_triggers", "grow_step",
        "min_world", "max_world", "min_efficiency",
    }
    if unknown:
        raise ValueError(f"unknown policy keys: {sorted(unknown)}")
    return MigrationPolicy(
        name=str(d.get("name", "unnamed")),
        enabled=bool(d.get("enabled", True)),
        triggers=tuple(predicate_from_dict(p) for p in d.get("triggers", ())),
        source_guards=tuple(
            predicate_from_dict(p) for p in d.get("source_guards", ())
        ),
        dest_conditions=tuple(
            predicate_from_dict(p) for p in d.get("dest_conditions", ())
        ),
        strategy=str(d.get("strategy", "first_fit")),
        grow_triggers=tuple(
            predicate_from_dict(p) for p in d.get("grow_triggers", ())
        ),
        shrink_triggers=tuple(
            predicate_from_dict(p) for p in d.get("shrink_triggers", ())
        ),
        grow_step=int(d.get("grow_step", 1)),
        min_world=int(d.get("min_world", 1)),
        max_world=int(d.get("max_world", 0)),
        min_efficiency=float(d.get("min_efficiency", 0.0)),
    )


def policy_to_dict(policy: MigrationPolicy) -> dict:
    """Inverse of :func:`policy_from_dict` (round-trip stable)."""

    def preds(ps):
        return [
            {"metric": p.metric, "op": p.op, "value": p.value} for p in ps
        ]

    d = {
        "name": policy.name,
        "enabled": policy.enabled,
        "triggers": preds(policy.triggers),
        "source_guards": preds(policy.source_guards),
        "dest_conditions": preds(policy.dest_conditions),
        "strategy": policy.strategy,
    }
    # Malleability keys ride only when used, so rigid policy files
    # round-trip to their historical byte-for-byte JSON form.
    if policy.grow_triggers:
        d["grow_triggers"] = preds(policy.grow_triggers)
    if policy.shrink_triggers:
        d["shrink_triggers"] = preds(policy.shrink_triggers)
    if policy.grow_step != 1:
        d["grow_step"] = policy.grow_step
    if policy.min_world != 1:
        d["min_world"] = policy.min_world
    if policy.max_world != 0:
        d["max_world"] = policy.max_world
    if policy.min_efficiency != 0.0:
        d["min_efficiency"] = policy.min_efficiency
    return d


def load_policy_file(path: str) -> MigrationPolicy:
    """Read a ``*.policy.json`` file into a :class:`MigrationPolicy`."""
    import json

    with open(path, encoding="utf-8") as fh:
        return policy_from_dict(json.load(fh))


def policy_1() -> MigrationPolicy:
    """Policy 1: No migration."""
    return MigrationPolicy(name="policy-1", enabled=False)


def policy_2() -> MigrationPolicy:
    """Policy 2: load/process thresholds, communication-blind.

    Migrate when 1-min load > 2 or active processes > 150; destination
    must have load < 1 and processes < 100.
    """
    return MigrationPolicy(
        name="policy-2",
        triggers=(
            MetricPredicate("loadavg1", ">", 2.0),
            MetricPredicate("proc_count", ">", 150.0),
        ),
        dest_conditions=(
            MetricPredicate("loadavg1", "<", 1.0),
            MetricPredicate("proc_count", "<", 100.0),
        ),
    )


def policy_3() -> MigrationPolicy:
    """Policy 3: Policy 2 plus communication awareness.

    Source may migrate only while its flow ≤ 5 MB/s; destination must
    additionally have flow ≤ 3 MB/s.
    """
    base = policy_2()
    return MigrationPolicy(
        name="policy-3",
        triggers=base.triggers,
        source_guards=(MetricPredicate("comm_mbs", "<=", 5.0),),
        dest_conditions=base.dest_conditions
        + (MetricPredicate("comm_mbs", "<=", 3.0),),
    )


def malleable_policy(
    grow_at: float = 2.0,
    shrink_at: float = 4.0,
    grow_step: int = 1,
    min_efficiency: float = 0.5,
    max_world: int = 0,
) -> MigrationPolicy:
    """Policy 2 extended with the DMR-style reshape ladder.

    An overloaded source first tries to *shrink* (retire its rank and
    vacate the host) when contention is severe (load > ``shrink_at``),
    then to *grow* the world onto ``grow_step`` fresh hosts (load >
    ``grow_at``), and only then falls back to the paper's 1:1
    migration.  Not part of the 2004 paper — see docs/malleability.md
    and docs/paper_mapping.md for the departure.
    """
    base = policy_2()
    return MigrationPolicy(
        name="malleable",
        triggers=base.triggers,
        dest_conditions=base.dest_conditions,
        grow_triggers=(MetricPredicate("loadavg1", ">", grow_at),),
        shrink_triggers=(MetricPredicate("loadavg1", ">", shrink_at),),
        grow_step=grow_step,
        max_world=max_world,
        min_efficiency=min_efficiency,
    )


PAPER_POLICIES = {1: policy_1, 2: policy_2, 3: policy_3}
