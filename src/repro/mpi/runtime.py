"""MPI runtime: world launch and global parameters (the `mpirun` analog)."""

from __future__ import annotations

from typing import Any, Callable, Iterable

from .comm import Comm
from .group import CommGroup
from .process import MpiProcess

#: LAM/MPI 6.5.9 dynamic process management is slow; the paper measures
#: ~0.3 s to get the initialized process running on the destination.
DEFAULT_SPAWN_LATENCY = 0.3

#: Same-host (shared-memory) message latency.
DEFAULT_LOCAL_LATENCY = 2e-5


class MpiContext:
    """Per-process context handed to application entry functions."""

    def __init__(self, runtime: "MpiRuntime", process: MpiProcess,
                 comm: Comm):
        self.runtime = runtime
        self.process = process
        self.comm = comm

    @property
    def env(self):
        return self.process.env

    @property
    def host(self):
        return self.process.host

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size


class LaunchResult:
    """Everything `mpirun` started: contexts, sim processes, the world."""

    def __init__(self, contexts: list, sim_procs: list, world: CommGroup):
        self.contexts = contexts
        self.sim_procs = sim_procs
        self.world = world

    @property
    def done(self):
        """Event: all ranks' generators have returned."""
        env = self.world.runtime.env
        return env.all_of(self.sim_procs)

    def values(self) -> list:
        """Return values of all ranks (after completion)."""
        return [p.value for p in self.sim_procs]


class MpiRuntime:
    """The simulated MPI-2 installation on a cluster."""

    def __init__(
        self,
        cluster: Any,
        spawn_latency: float = DEFAULT_SPAWN_LATENCY,
        local_latency: float = DEFAULT_LOCAL_LATENCY,
    ):
        if spawn_latency < 0 or local_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.spawn_latency = float(spawn_latency)
        self.local_latency = float(local_latency)

    def start(self, generator, name: str = "mpi-proc"):
        """Run a generator as a simulation process."""
        return self.env.process(generator, name=name)

    def launch(
        self,
        entry: Callable,
        hosts: Iterable[Any],
        name: str = "app",
    ) -> LaunchResult:
        """Start ``entry(ctx)`` on each host; ranks follow host order."""
        hosts = list(hosts)
        if not hosts:
            raise ValueError("need at least one host")
        procs = [
            MpiProcess(self, host, name=f"{name}[{i}]")
            for i, host in enumerate(hosts)
        ]
        world = CommGroup(self, procs, label=f"{name}.world")
        contexts = []
        sim_procs = []
        for proc in procs:
            ctx = MpiContext(self, proc, Comm(world, proc))
            contexts.append(ctx)
            sim_procs.append(self.start(entry(ctx), name=proc.name))
        return LaunchResult(contexts, sim_procs, world)

    def comm_self(self, process: MpiProcess) -> Comm:
        """A COMM_SELF-style single-member communicator for ``process``."""
        group = CommGroup(
            self, [process], label=f"self.{process.name}", internal=True
        )
        return Comm(group, process)
