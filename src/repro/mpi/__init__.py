"""Simulated MPI-2 runtime.

Communicators with point-to-point and binomial-tree collective
operations, plus the MPI-2 dynamic process management (spawn /
intercommunicator merge) that the paper's migration protocol relies on.
All payloads are real Python objects sized by their actual serialized
length.
"""

from .comm import Comm, Intercomm, SpawnedContext
from .errors import DeadProcessError, MpiError, RankError, SpawnError
from .group import CommGroup
from .message import ANY_SOURCE, ANY_TAG, Message
from .process import MpiProcess
from .runtime import (
    DEFAULT_LOCAL_LATENCY,
    DEFAULT_SPAWN_LATENCY,
    LaunchResult,
    MpiContext,
    MpiRuntime,
)
from .sizeof import ENVELOPE_BYTES, message_nbytes, payload_nbytes

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommGroup",
    "DEFAULT_LOCAL_LATENCY",
    "DEFAULT_SPAWN_LATENCY",
    "DeadProcessError",
    "ENVELOPE_BYTES",
    "Intercomm",
    "LaunchResult",
    "Message",
    "MpiContext",
    "MpiError",
    "MpiProcess",
    "MpiRuntime",
    "RankError",
    "SpawnedContext",
    "SpawnError",
    "message_nbytes",
    "payload_nbytes",
]
