"""Communicator group: the shared rank → process mapping."""

from __future__ import annotations

from typing import Any

from .errors import RankError
from .process import MpiProcess


class CommGroup:
    """Shared state of one communicator.

    Each rank holds a :class:`~repro.mpi.comm.Comm` *handle* onto this
    group.  Migration calls :meth:`replace` to swap the process behind a
    rank — handles and in-flight deliveries resolve ranks at use time,
    so they follow the replacement automatically (the paper's dynamic
    communicator management over MPI-2).
    """

    _next_id = 0

    def __init__(
        self,
        runtime: Any,
        procs: list,
        label: str = "",
        internal: bool = False,
    ):
        CommGroup._next_id += 1
        self.id = CommGroup._next_id
        self.runtime = runtime
        self.procs: list[MpiProcess] = list(procs)
        self.label = label or f"comm{self.id}"
        #: Internal groups (COMM_SELF, migration intercomm bridges) are
        #: skipped when migration re-points a rank at a new process.
        self.internal = internal
        #: Per-process collective sequence counters (part of a process's
        #: execution state; transferred on migration).
        self._coll_seq: dict[int, int] = {}
        for proc in self.procs:
            proc.groups.append(self)

    @property
    def size(self) -> int:
        return len(self.procs)

    def rank_of(self, proc: MpiProcess) -> int:
        try:
            return self.procs.index(proc)
        except ValueError:
            raise RankError(
                f"{proc!r} is not a member of {self.label}"
            ) from None

    def proc_at(self, rank: int) -> MpiProcess:
        if not 0 <= rank < len(self.procs):
            raise RankError(
                f"rank {rank} out of range for {self.label} "
                f"(size {len(self.procs)})"
            )
        return self.procs[rank]

    def contains(self, proc: MpiProcess) -> bool:
        return proc in self.procs

    def next_coll_seq(self, proc: MpiProcess) -> int:
        """Next collective sequence number for ``proc`` in this group."""
        seq = self._coll_seq.get(proc.uid, 0)
        self._coll_seq[proc.uid] = seq + 1
        return seq

    def add(self, proc: MpiProcess) -> int:
        """Append a new member at the highest rank (world growth).

        Existing ranks are untouched, so in-flight deliveries and
        handles stay valid.  Returns the new member's rank.
        """
        if proc in self.procs:
            raise RankError(f"{proc!r} is already a member of {self.label}")
        self.procs.append(proc)
        proc.groups.append(self)
        return len(self.procs) - 1

    def remove(self, proc: MpiProcess) -> int:
        """Drop a member (world shrink); higher ranks shift down by one.

        Only safe at a world-wide barrier with no in-flight messages
        addressed to the departing rank.  Returns the vacated rank.
        """
        rank = self.rank_of(proc)
        self.procs.pop(rank)
        if self in proc.groups:
            proc.groups.remove(self)
        self._coll_seq.pop(proc.uid, None)
        return rank

    def replace(self, old: MpiProcess, new: MpiProcess) -> int:
        """Swap the process behind a rank (migration support).

        Transfers the collective sequence counter; the caller moves the
        mailbox via :meth:`MpiProcess.adopt_state_from`.  Returns the
        rank that was replaced.
        """
        rank = self.rank_of(old)
        self.procs[rank] = new
        if self not in new.groups:
            new.groups.append(self)
        if self in old.groups:
            old.groups.remove(self)
        if old.uid in self._coll_seq:
            self._coll_seq[new.uid] = self._coll_seq.pop(old.uid)
        return rank

    def __repr__(self) -> str:
        members = ",".join(p.host.name for p in self.procs)
        return f"<CommGroup {self.label} [{members}]>"
