"""Payload sizing for simulated transfers.

Message payloads are real Python objects; their on-wire size is the
*actual* serialized length (numpy buffer size or pickle length), so the
simulated network moves genuinely representative byte counts — the same
trick mpi4py plays with pickle for generic objects.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

#: Fixed per-message envelope (headers, tag, matching info).
ENVELOPE_BYTES = 64


def payload_nbytes(obj: Any) -> int:
    """Serialized size of ``obj`` in bytes (without envelope)."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def message_nbytes(obj: Any) -> int:
    """On-wire size of a message carrying ``obj``."""
    return ENVELOPE_BYTES + payload_nbytes(obj)
