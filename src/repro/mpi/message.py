"""Message envelope and per-process mailbox."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """One delivered message sitting in a mailbox."""

    comm_id: int
    src_rank: int
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    delivered_at: float

    def matches(self, comm_id: int, source: int, tag: int) -> bool:
        """Does this message satisfy a receive posted with these args?"""
        if self.comm_id != comm_id:
            return False
        if source != ANY_SOURCE and self.src_rank != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True
