"""Simulated MPI process: identity, mailbox, host placement."""

from __future__ import annotations

from typing import Any

from ..sim.resources import FilterStore


class MpiProcess:
    """One MPI process instance living on a host.

    A process owns a single mailbox shared by all communicators it
    belongs to (messages carry the communicator id).  During migration
    HPCM replaces a rank's :class:`MpiProcess` with a fresh instance on
    the destination host and moves the mailbox contents — that is the
    paper's "communication state transfer".
    """

    _next_uid = 0

    def __init__(self, runtime: Any, host: Any, name: str = "mpi"):
        self.runtime = runtime
        self.env = runtime.env
        self.host = host
        self.name = name
        self.mailbox = FilterStore(self.env)
        self.alive = True
        #: Communicator groups this process belongs to.
        self.groups: list = []
        MpiProcess._next_uid += 1
        self.uid = MpiProcess._next_uid
        self.proc_entry = host.procs.spawn(name, kind="app")

    def exit(self) -> None:
        """Terminate: leave the process table, refuse new messages."""
        if not self.alive:
            return
        self.alive = False
        self.host.procs.exit(self.proc_entry.pid)

    def adopt_state_from(self, other: "MpiProcess") -> None:
        """Take over ``other``'s pending messages (communication state)."""
        self.mailbox.items.extend(other.mailbox.items)
        other.mailbox.items.clear()
        self.mailbox._trigger()

    def __repr__(self) -> str:
        status = "alive" if self.alive else "dead"
        return f"<MpiProcess {self.name!r}@{self.host.name} {status}>"
