"""MPI error types."""

from __future__ import annotations


class MpiError(Exception):
    """Base class for simulated-MPI failures."""


class RankError(MpiError):
    """A rank outside the communicator's group was addressed."""


class DeadProcessError(MpiError):
    """Communication with a process that has exited."""


class SpawnError(MpiError):
    """Dynamic process creation failed (e.g. target host down)."""
