"""Communicator handles: point-to-point, collectives, dynamic processes.

All operations are *generators* to be driven with ``yield from`` inside
a simulated process, e.g.::

    yield from comm.send(payload, dest=1, tag=7)
    data = yield from comm.recv(source=ANY_SOURCE, tag=7)
    total = yield from comm.allreduce(x, op=operator.add)

Collectives use binomial trees (log₂ p rounds) like a real MPI, so the
simulated communication cost scales realistically.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .errors import DeadProcessError, MpiError, RankError, SpawnError
from .group import CommGroup
from .message import ANY_SOURCE, ANY_TAG, Message
from .process import MpiProcess
from .sizeof import message_nbytes

#: Base for internal collective tags (kept clear of user tags >= 0).
_COLL_TAG_BASE = -1000


class Comm:
    """One rank's handle onto an intra-communicator."""

    def __init__(self, group: CommGroup, me: MpiProcess):
        self.group = group
        self.me = me

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.group.rank_of(self.me)

    @property
    def size(self) -> int:
        return self.group.size

    @property
    def env(self):
        return self.me.env

    @property
    def runtime(self):
        return self.group.runtime

    def handle_for(self, proc: MpiProcess) -> "Comm":
        """A handle onto the same group for another member process."""
        return Comm(self.group, proc)

    # -- point-to-point -----------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0):
        """Blocking send (completes when the message is delivered)."""
        yield from self._send_to_group(self.group, data, dest, tag)

    def _send_to_group(self, group: CommGroup, data: Any, dest: int,
                       tag: int):
        if tag < 0:
            pass  # internal collective tags use negatives deliberately
        target = group.proc_at(dest)  # validates the rank
        if not target.alive and not _being_replaced(group, dest):
            raise DeadProcessError(f"rank {dest} of {group.label} has exited")
        nbytes = message_nbytes(data)
        runtime = self.runtime
        sent_at = self.env.now
        if target.host is self.me.host:
            yield self.env.timeout(runtime.local_latency)
        else:
            yield runtime.network.transfer(
                self.me.host.name,
                target.host.name,
                nbytes,
                label=f"{group.label}:t{tag}",
            )
        # Re-resolve the destination: migration may have replaced the
        # process behind this rank while the bytes were in flight.
        target = group.proc_at(dest)
        msg = Message(
            comm_id=group.id,
            src_rank=self._rank_in(group),
            tag=tag,
            payload=data,
            nbytes=nbytes,
            sent_at=sent_at,
            delivered_at=self.env.now,
        )
        yield target.mailbox.put(msg)

    def _rank_in(self, group: CommGroup) -> int:
        # For intra-comms the sender is a member; intercomm subclasses
        # override message source ranks via their local group.
        return group.rank_of(self.me) if group.contains(self.me) else -2

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        msg = yield from self.recv_msg(source, tag)
        return msg.payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the full :class:`Message`."""
        msg = yield self.me.mailbox.get(
            lambda m: m.matches(self.group.id, source, tag)
        )
        return msg

    def isend(self, data: Any, dest: int, tag: int = 0):
        """Non-blocking send; returns a request event to ``yield`` on."""
        return self.env.process(
            self.send(data, dest, tag), name=f"isend:{self.group.label}"
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking receive; the request's value is the payload."""
        return self.env.process(
            self.recv(source, tag), name=f"irecv:{self.group.label}"
        )

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a matching pending message."""
        return any(
            m.matches(self.group.id, source, tag)
            for m in self.me.mailbox.items
        )

    # -- collectives ----------------------------------------------------
    def _coll_tag(self) -> int:
        return _COLL_TAG_BASE - self.group.next_coll_seq(self.me)

    def bcast(self, data: Any, root: int = 0):
        """Binomial-tree broadcast; returns the root's data everywhere."""
        rank, size = self.rank, self.size
        tag = self._coll_tag()
        if size == 1:
            return data
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                src = (vrank - mask + root) % size
                data = yield from self.recv(source=src, tag=tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                dst = (vrank + mask + root) % size
                yield from self.send(data, dest=dst, tag=tag)
            mask >>= 1
        return data

    def reduce(self, data: Any, op: Callable[[Any, Any], Any], root: int = 0):
        """Binomial-tree reduction with a commutative ``op``.

        Returns the reduced value at ``root`` and ``None`` elsewhere.
        """
        rank, size = self.rank, self.size
        tag = self._coll_tag()
        if size == 1:
            return data
        vrank = (rank - root) % size
        acc = data
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = (vrank - mask + root) % size
                yield from self.send(acc, dest=dst, tag=tag)
                return None
            src_v = vrank + mask
            if src_v < size:
                src = (src_v + root) % size
                other = yield from self.recv(source=src, tag=tag)
                acc = op(acc, other)
            mask <<= 1
        return acc

    def allreduce(self, data: Any, op: Callable[[Any, Any], Any]):
        """Reduce to rank 0, then broadcast the result."""
        result = yield from self.reduce(data, op, root=0)
        result = yield from self.bcast(result, root=0)
        return result

    def barrier(self):
        """All ranks synchronize (reduce + broadcast of a token)."""
        yield from self.allreduce(0, op=lambda a, b: 0)

    def gather(self, data: Any, root: int = 0):
        """Gather one value per rank; list at root, ``None`` elsewhere."""
        rank, size = self.rank, self.size
        tag = self._coll_tag()
        if rank != root:
            yield from self.send(data, dest=root, tag=tag)
            return None
        out: list = [None] * size
        out[root] = data
        for src in range(size):
            if src == root:
                continue
            msg = yield from self.recv_msg(source=src, tag=tag)
            out[src] = msg.payload
        return out

    def allgather(self, data: Any):
        gathered = yield from self.gather(data, root=0)
        gathered = yield from self.bcast(gathered, root=0)
        return gathered

    def scatter(self, chunks: Optional[list], root: int = 0):
        """Scatter a list of ``size`` chunks from root; returns own chunk."""
        rank, size = self.rank, self.size
        tag = self._coll_tag()
        if rank == root:
            if chunks is None or len(chunks) != size:
                raise MpiError(
                    f"scatter needs exactly {size} chunks at the root"
                )
            for dst in range(size):
                if dst != root:
                    yield from self.send(chunks[dst], dest=dst, tag=tag)
            return chunks[root]
        chunk = yield from self.recv(source=root, tag=tag)
        return chunk

    def sendrecv(self, data: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG):
        """Simultaneous send and receive (deadlock-free exchange)."""
        req = self.isend(data, dest, tag=sendtag)
        received = yield from self.recv(source=source, tag=recvtag)
        yield req
        return received

    def alltoall(self, chunks: list):
        """Every rank sends ``chunks[j]`` to rank j; returns the list of
        chunks received (own chunk passes through locally)."""
        rank, size = self.rank, self.size
        if chunks is None or len(chunks) != size:
            raise MpiError(f"alltoall needs exactly {size} chunks")
        tag = self._coll_tag()
        requests = [
            self.isend(chunks[dst], dest=dst, tag=tag)
            for dst in range(size) if dst != rank
        ]
        out: list = [None] * size
        out[rank] = chunks[rank]
        for _ in range(size - 1):
            msg = yield from self.recv_msg(tag=tag)
            out[msg.src_rank] = msg.payload
        for req in requests:
            yield req
        return out

    def scan(self, data: Any, op: Callable[[Any, Any], Any]):
        """Inclusive prefix reduction: rank r gets op over ranks 0..r."""
        rank, size = self.rank, self.size
        tag = self._coll_tag()
        acc = data
        if rank > 0:
            prefix = yield from self.recv(source=rank - 1, tag=tag)
            acc = op(prefix, data)
        if rank < size - 1:
            yield from self.send(acc, dest=rank + 1, tag=tag)
        return acc

    # -- dynamic process management (MPI-2) ------------------------------
    def spawn(
        self,
        entry: Callable,
        hosts: list,
        name: str = "spawned",
        latency: Optional[float] = None,
    ):
        """Create new processes and connect them with an intercommunicator.

        ``entry(ctx)`` must be a generator factory; each child receives a
        :class:`SpawnedContext` with its child-world communicator and the
        parent intercommunicator.  Mirrors ``MPI_Comm_spawn``; the
        configurable ``spawn_latency`` reproduces LAM/MPI's slow dynamic
        process management (the paper measures ~0.3 s).

        ``latency`` overrides the runtime's spawn latency (e.g. 0 for a
        pre-initialized standby process).  Returns the parent-side
        :class:`Intercomm`.
        """
        runtime = self.runtime
        if not hosts:
            raise SpawnError("no hosts given")
        delay = runtime.spawn_latency if latency is None else latency
        yield self.env.timeout(delay)
        children = []
        for host in hosts:
            if not host.up:
                raise SpawnError(f"host {host.name} is down")
            children.append(
                MpiProcess(runtime, host, name=f"{name}[{len(children)}]")
            )
        child_group = CommGroup(runtime, children, label=f"{name}.world")
        state = _IntercommState(self.group, child_group)
        parent_icomm = Intercomm(state, self.group, child_group, self.me)
        for child in children:
            child_icomm = Intercomm(state, child_group, self.group, child)
            ctx = SpawnedContext(
                runtime=runtime,
                process=child,
                comm=Comm(child_group, child),
                parent=child_icomm,
            )
            runtime.start(entry(ctx), name=child.name)
        return parent_icomm


class _IntercommState:
    """State shared by the two sides of an intercommunicator."""

    def __init__(self, group_a: CommGroup, group_b: CommGroup):
        self.group_a = group_a
        self.group_b = group_b
        self.merged: Optional[CommGroup] = None
        #: Bridge group used for message addressing across the two sides:
        #: ranks 0..|A|-1 are A, |A|.. are B.
        runtime = group_a.runtime
        self.bridge = CommGroup(
            runtime,
            list(group_a.procs) + list(group_b.procs),
            label=f"icomm({group_a.label}|{group_b.label})",
            internal=True,
        )


class Intercomm:
    """One process's handle onto an intercommunicator.

    Point-to-point ranks address the *remote* group, per MPI semantics.
    """

    def __init__(
        self,
        state: _IntercommState,
        local_group: CommGroup,
        remote_group: CommGroup,
        me: MpiProcess,
    ):
        self._state = state
        self.local_group = local_group
        self.remote_group = remote_group
        self.me = me
        self._local_comm = Comm(state.bridge, me)

    @property
    def rank(self) -> int:
        return self.local_group.rank_of(self.me)

    @property
    def remote_size(self) -> int:
        return self.remote_group.size

    @property
    def env(self):
        return self.me.env

    def _bridge_rank(self, remote_rank: int) -> int:
        offset = (
            0 if self.remote_group is self._state.group_a
            else self._state.group_a.size
        )
        return offset + remote_rank

    def send(self, data: Any, dest: int, tag: int = 0):
        """Send to rank ``dest`` of the remote group."""
        if not 0 <= dest < self.remote_group.size:
            raise RankError(f"remote rank {dest} out of range")
        yield from self._local_comm.send(
            data, self._bridge_rank(dest), tag=tag
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Receive from the remote group."""
        if source != ANY_SOURCE:
            source = self._bridge_rank(source)
        payload = yield from self._local_comm.recv(source=source, tag=tag)
        return payload

    def merge(self, high: bool = False):
        """Merge both sides into one intracommunicator (``MPI_Intercomm_merge``).

        The side passing ``high=True`` gets the upper ranks.  Each side
        calls this; they share the resulting group.
        """
        state = self._state
        if state.merged is None:
            mine = list(self.local_group.procs)
            theirs = list(self.remote_group.procs)
            procs = theirs + mine if high else mine + theirs
            state.merged = CommGroup(
                self.local_group.runtime,
                procs,
                label=f"merged({state.bridge.label})",
            )
        yield self.env.timeout(self.local_group.runtime.local_latency)
        return Comm(state.merged, self.me)


class SpawnedContext:
    """Everything a spawned process needs to run."""

    def __init__(
        self,
        runtime: Any,
        process: MpiProcess,
        comm: Comm,
        parent: Intercomm,
    ):
        self.runtime = runtime
        self.process = process
        self.comm = comm
        self.parent = parent

    @property
    def env(self):
        return self.process.env

    @property
    def host(self):
        return self.process.host

    @property
    def rank(self) -> int:
        return self.comm.rank


def _being_replaced(group: CommGroup, rank: int) -> bool:
    """Hook for migration: a dead process whose rank will be re-pointed.

    The HPCM middleware replaces ranks atomically before killing the old
    process, so in practice a dead target here is a real error.
    """
    return False
