"""Plain-text reporting: tables and ASCII plots for bench output."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


from .timeseries import TimeSeries


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def ascii_plot(
    series: Sequence[TimeSeries],
    width: int = 72,
    height: int = 14,
    title: str = "",
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Plot one or more time series as ASCII art (for bench stdout)."""
    series = [s for s in series if len(s)]
    if not series:
        return f"{title}\n(no data)"
    marks = "*o+x#@%&"
    t_min = min(s.times.min() for s in series)
    t_max = max(s.times.max() for s in series)
    v_min = min(s.values.min() for s in series)
    v_max = max(s.values.max() for s in series)
    if v_max == v_min:
        v_max = v_min + 1.0
    if t_max == t_min:
        t_max = t_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        mark = marks[idx % len(marks)]
        for t, v in zip(s.times, s.values):
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{v_max:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{v_min:10.3f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"t: {t_min:.0f} .. {t_max:.0f} s"
    )
    if labels:
        legend = "  ".join(
            f"{marks[i % len(marks)]}={label}"
            for i, label in enumerate(labels)
        )
        lines.append(" " * 12 + legend)
    return "\n".join(lines)
