"""Time-series containers for experiment measurements."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np


class TimeSeries:
    """An append-only (time, value) series with summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []
        # Array views are materialized lazily and invalidated on append,
        # so repeated stat queries over a settled series don't rebuild
        # the ndarrays on every property access.
        self._times_arr: Optional[np.ndarray] = None
        self._values_arr: Optional[np.ndarray] = None

    @classmethod
    def from_points(
        cls, points: "List[Tuple[float, float]]", name: str = ""
    ) -> "TimeSeries":
        """Rebuild a series from ``points()`` output (e.g. after a
        round-trip through a JSON sweep-cache summary)."""
        ts = cls(name)
        for t, value in points:
            ts.append(t, value)
        return ts

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ValueError("timestamps must be non-decreasing")
        self._times.append(float(t))
        self._values.append(float(value))
        self._times_arr = None
        self._values_arr = None

    def append_many(self, times, values) -> None:
        """Bulk append of parallel time/value sequences.

        One validation pass over arrays instead of a Python call per
        sample — the shape the vectorized host plane produces, where a
        whole column of per-host samples lands per kernel step.  Same
        invariants as :meth:`append` (equal lengths, non-decreasing
        timestamps, including against the existing tail); on a
        validation error the series is left untouched.
        """
        t_arr = np.asarray(times, dtype=float)
        v_arr = np.asarray(values, dtype=float)
        if t_arr.shape != v_arr.shape or t_arr.ndim != 1:
            raise ValueError("times and values must be equal-length 1-D")
        if t_arr.size == 0:
            return
        if np.any(np.diff(t_arr) < 0) or (
            self._times and t_arr[0] < self._times[-1]
        ):
            raise ValueError("timestamps must be non-decreasing")
        self._times.extend(t_arr.tolist())
        self._values.extend(v_arr.tolist())
        self._times_arr = None
        self._values_arr = None

    # -- views ------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        arr = self._times_arr
        if arr is None:
            arr = self._times_arr = np.asarray(self._times)
        return arr

    @property
    def values(self) -> np.ndarray:
        arr = self._values_arr
        if arr is None:
            arr = self._values_arr = np.asarray(self._values)
        return arr

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)

    def __bool__(self) -> bool:
        return bool(self._times)

    # -- statistics ---------------------------------------------------------
    def mean(self, t_min: float = -np.inf, t_max: float = np.inf) -> float:
        sel = self._select(t_min, t_max)
        if not sel.size:
            raise ValueError(f"no samples in [{t_min}, {t_max}]")
        return float(sel.mean())

    def max(self, t_min: float = -np.inf, t_max: float = np.inf) -> float:
        sel = self._select(t_min, t_max)
        if not sel.size:
            raise ValueError(f"no samples in [{t_min}, {t_max}]")
        return float(sel.max())

    def min(self, t_min: float = -np.inf, t_max: float = np.inf) -> float:
        sel = self._select(t_min, t_max)
        if not sel.size:
            raise ValueError(f"no samples in [{t_min}, {t_max}]")
        return float(sel.min())

    def _select(self, t_min: float, t_max: float) -> np.ndarray:
        t = self.times
        mask = (t >= t_min) & (t <= t_max)
        return self.values[mask]

    def value_at(self, t: float) -> Optional[float]:
        """Last sample at or before ``t`` (step interpolation)."""
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        if idx < 0:
            return None
        return self._values[idx]

    def overhead_vs(self, baseline: "TimeSeries") -> float:
        """Relative mean increase over a baseline series (Figure 5's
        'overhead is 3.9%' metric)."""
        base = baseline.mean()
        if base == 0:
            raise ValueError("baseline mean is zero")
        return (self.mean() - base) / base
