"""Measurement: time series, host recorders, plain-text reports,
and per-phase breakdowns computed from trace spans."""

from .recorder import (
    ClusterRecorder,
    DEFAULT_RECORD_INTERVAL,
    HostRecorder,
    RECORDED_METRICS,
)
from .report import ascii_plot, format_table
from .timeseries import TimeSeries
from .tracestats import (
    format_phase_table,
    migration_phases,
    phase_breakdown,
    span_durations,
)

__all__ = [
    "ClusterRecorder",
    "DEFAULT_RECORD_INTERVAL",
    "HostRecorder",
    "RECORDED_METRICS",
    "TimeSeries",
    "ascii_plot",
    "format_table",
    "format_phase_table",
    "migration_phases",
    "phase_breakdown",
    "span_durations",
]
