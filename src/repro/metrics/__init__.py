"""Measurement: time series, host recorders, plain-text reports."""

from .recorder import (
    ClusterRecorder,
    DEFAULT_RECORD_INTERVAL,
    HostRecorder,
    RECORDED_METRICS,
)
from .report import ascii_plot, format_table
from .timeseries import TimeSeries

__all__ = [
    "ClusterRecorder",
    "DEFAULT_RECORD_INTERVAL",
    "HostRecorder",
    "RECORDED_METRICS",
    "TimeSeries",
    "ascii_plot",
    "format_table",
]
