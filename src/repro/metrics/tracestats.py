"""Per-phase cost breakdowns computed from trace spans.

The paper's §5.2 attributes migration cost phase by phase — decision
(~2 ms), initialization/spawn (~0.3 s), reaching the poll-point
(~1.4 s), resume (<1 s), total (~7.5 s).  This module derives the same
breakdown from a structured trace (:mod:`repro.trace`) instead of from
:class:`~repro.hpcm.record.MigrationRecord` bookkeeping, and renders
it through the existing report path (:func:`~repro.metrics.report
.format_table`) — so ``repro trace fig7`` prints a Figure-7-style
phase table straight out of the trace file.

Records are duck-typed (``name`` / ``t`` / ``dur`` / ``host`` /
``attrs``): both live :class:`~repro.trace.TraceRecord` lists and
traces re-loaded from JSONL work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .report import format_table

#: hpcm.* span name → short phase label used in per-migration rows.
_PHASE_LABELS = {
    "hpcm.spawn": "spawn_s",
    "hpcm.capture": "capture_s",
    "hpcm.transfer": "transfer_s",
    "hpcm.drain": "drain_s",
}


def span_durations(records: Iterable) -> Dict[str, List[float]]:
    """Span name → list of durations (seconds), in trace order."""
    out: Dict[str, List[float]] = {}
    for rec in records:
        if rec.dur is not None:
            out.setdefault(rec.name, []).append(rec.dur)
    return out


def phase_breakdown(records: Iterable) -> List[Tuple[str, int, float, float]]:
    """Aggregate rows ``(span name, count, total s, mean s)``."""
    rows = []
    for name, durs in sorted(span_durations(records).items()):
        total = sum(durs)
        rows.append((name, len(durs), total, total / len(durs)))
    return rows


def format_phase_table(records: Iterable,
                       title: str = "per-phase span durations") -> str:
    """The aggregate breakdown as a plain-text table."""
    rows = [
        (name, count, round(total, 4), round(mean, 4))
        for name, count, total, mean in phase_breakdown(records)
    ]
    if not rows:
        return "(no spans in trace)"
    return format_table(["span", "count", "total s", "mean s"], rows,
                        title=title)


def migration_phases(records: Iterable) -> List[dict]:
    """One phase-cost dict per ``hpcm.migration`` span in the trace.

    Sub-phase spans (spawn/capture/transfer/drain) are matched to
    their migration by application name and time containment, so the
    result mirrors :meth:`~repro.hpcm.record.MigrationRecord.summary`
    but is computable from a trace file alone.
    """
    recs = list(records)
    migrations = [r for r in recs if r.name == "hpcm.migration"]
    phases = [r for r in recs if r.name in _PHASE_LABELS]
    out = []
    for mig in migrations:
        end = mig.t + (mig.dur or 0.0)
        row = {
            "app": mig.attrs.get("app"),
            "source": mig.attrs.get("source"),
            "dest": mig.attrs.get("dest"),
            "succeeded": mig.attrs.get("succeeded", False),
            "total_s": mig.dur,
        }
        for span in phases:
            if span.attrs.get("app") != row["app"]:
                continue
            if not (mig.t <= span.t and span.t + (span.dur or 0.0)
                    <= end + 1e-9):
                continue
            row[_PHASE_LABELS[span.name]] = span.dur
        out.append(row)
    return out
