"""Host performance recorder — the paper's standalone "sysinfo" sensor.

§5.1: "We monitor the host performance with or without the rescheduler
using a standalone performance sensor, named 'sysinfo', for performance
data collection ... The performance data is gathered at an interval of
10 seconds."  The recorder is deliberately independent of the
rescheduler's own monitor so overhead measurements don't disturb the
system under test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .timeseries import TimeSeries

DEFAULT_RECORD_INTERVAL = 10.0

#: The metrics every recorder tracks per host.  ``load_true`` is the
#: exact windowed mean of the run queue (∫queue dt / Δt) — what the
#: sampled load averages estimate, without their sampling noise.
RECORDED_METRICS = (
    "loadavg1", "loadavg5", "cpu_util", "send_kbs", "recv_kbs",
    "run_queue", "proc_count", "load_true",
)


class HostRecorder:
    """Samples one host's performance counters on a fixed interval."""

    def __init__(
        self,
        host: Any,
        interval: float = DEFAULT_RECORD_INTERVAL,
        metrics: tuple = RECORDED_METRICS,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.env = host.env
        self.interval = float(interval)
        self.series: Dict[str, TimeSeries] = {
            m: TimeSeries(f"{host.name}.{m}") for m in metrics
        }
        self._cpu_state: Optional[dict] = None
        self._last_tx: Optional[tuple] = None
        self._last_rx: Optional[tuple] = None
        self._last_load: Optional[tuple] = None
        self._stopped = False
        self.proc = self.env.process(self._run(), name=f"rec:{host.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped:
            yield self.interval  # bare-delay fast path
            self._sample()

    def _sample(self) -> None:
        now = self.env.now
        host = self.host
        values = {
            "loadavg1": host.loadavg.one,
            "loadavg5": host.loadavg.five,
            "run_queue": host.cpu.run_queue,
            "proc_count": float(host.procs.count()),
        }
        util, self._cpu_state = host.cpu.utilization_sample(self._cpu_state)
        values["cpu_util"] = util
        load_int = host.cpu.load_time()
        load_true = 0.0
        if self._last_load is not None:
            dt = now - self._last_load[0]
            if dt > 0:
                load_true = (load_int - self._last_load[1]) / dt
        self._last_load = (now, load_int)
        values["load_true"] = load_true
        tx, rx = host.bytes_sent(), host.bytes_received()
        send_kbs = recv_kbs = 0.0
        if self._last_tx is not None:
            dt = now - self._last_tx[0]
            if dt > 0:
                send_kbs = (tx - self._last_tx[1]) / dt / 1024.0
                recv_kbs = (rx - self._last_rx[1]) / dt / 1024.0
        self._last_tx, self._last_rx = (now, tx), (now, rx)
        values["send_kbs"] = send_kbs
        values["recv_kbs"] = recv_kbs
        for metric, value in values.items():
            if metric in self.series:
                self.series[metric].append(now, value)

    def __getitem__(self, metric: str) -> TimeSeries:
        return self.series[metric]


class ClusterRecorder:
    """One :class:`HostRecorder` per host."""

    def __init__(self, cluster: Any,
                 interval: float = DEFAULT_RECORD_INTERVAL,
                 hosts: Optional[List[str]] = None):
        names = hosts or [h.name for h in cluster]
        self.recorders: Dict[str, HostRecorder] = {
            name: HostRecorder(cluster.host(name), interval=interval)
            for name in names
        }

    def __getitem__(self, host: str) -> HostRecorder:
        return self.recorders[host]

    def stop(self) -> None:
        for rec in self.recorders.values():
            rec.stop()
