"""Host performance recorder — the paper's standalone "sysinfo" sensor.

§5.1: "We monitor the host performance with or without the rescheduler
using a standalone performance sensor, named 'sysinfo', for performance
data collection ... The performance data is gathered at an interval of
10 seconds."  The recorder is deliberately independent of the
rescheduler's own monitor so overhead measurements don't disturb the
system under test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .timeseries import TimeSeries

DEFAULT_RECORD_INTERVAL = 10.0

#: Samples buffered per metric before a bulk ``append_many`` flush.
#: Within a flush window appends are plain list appends; the series
#: (and its array-view invalidation) is touched once per batch.
FLUSH_EVERY = 32

#: The metrics every recorder tracks per host.  ``load_true`` is the
#: exact windowed mean of the run queue (∫queue dt / Δt) — what the
#: sampled load averages estimate, without their sampling noise.
RECORDED_METRICS = (
    "loadavg1", "loadavg5", "cpu_util", "send_kbs", "recv_kbs",
    "run_queue", "proc_count", "load_true",
)


class HostRecorder:
    """Samples one host's performance counters on a fixed interval."""

    def __init__(
        self,
        host: Any,
        interval: float = DEFAULT_RECORD_INTERVAL,
        metrics: tuple = RECORDED_METRICS,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.env = host.env
        self.interval = float(interval)
        self._series: Dict[str, TimeSeries] = {
            m: TimeSeries(f"{host.name}.{m}") for m in metrics
        }
        #: Per-metric (times, values) staging lists, flushed in bulk
        #: through :meth:`TimeSeries.append_many`.
        self._pending: Dict[str, tuple] = {
            m: ([], []) for m in metrics
        }
        self._cpu_state: Optional[dict] = None
        self._last_tx: Optional[tuple] = None
        self._last_rx: Optional[tuple] = None
        self._last_load: Optional[tuple] = None
        self._stopped = False
        self.proc = self.env.process(self._run(), name=f"rec:{host.name}")

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped:
            yield self.interval  # bare-delay fast path
            self._sample()

    def _sample(self) -> None:
        now = self.env.now
        host = self.host
        values = {
            "loadavg1": host.loadavg.one,
            "loadavg5": host.loadavg.five,
            "run_queue": host.cpu.run_queue,
            "proc_count": float(host.procs.count()),
        }
        util, self._cpu_state = host.cpu.utilization_sample(self._cpu_state)
        values["cpu_util"] = util
        load_int = host.cpu.load_time()
        load_true = 0.0
        if self._last_load is not None:
            dt = now - self._last_load[0]
            if dt > 0:
                load_true = (load_int - self._last_load[1]) / dt
        self._last_load = (now, load_int)
        values["load_true"] = load_true
        tx, rx = host.bytes_sent(), host.bytes_received()
        send_kbs = recv_kbs = 0.0
        if self._last_tx is not None:
            dt = now - self._last_tx[0]
            if dt > 0:
                send_kbs = (tx - self._last_tx[1]) / dt / 1024.0
                recv_kbs = (rx - self._last_rx[1]) / dt / 1024.0
        self._last_tx, self._last_rx = (now, tx), (now, rx)
        values["send_kbs"] = send_kbs
        values["recv_kbs"] = recv_kbs
        for metric, value in values.items():
            pending = self._pending.get(metric)
            if pending is not None:
                pending[0].append(now)
                pending[1].append(value)
                if len(pending[0]) >= FLUSH_EVERY:
                    self._flush(metric)

    def _flush(self, metric: str) -> None:
        times, vals = self._pending[metric]
        if times:
            self._series[metric].append_many(times, vals)
            times.clear()
            vals.clear()

    def flush(self) -> None:
        """Push every buffered sample into its series."""
        for metric in self._pending:
            self._flush(metric)

    @property
    def series(self) -> Dict[str, TimeSeries]:
        """The recorded series, with all buffered samples flushed."""
        self.flush()
        return self._series

    def __getitem__(self, metric: str) -> TimeSeries:
        self._flush(metric)
        return self._series[metric]


class ClusterRecorder:
    """One :class:`HostRecorder` per host."""

    def __init__(self, cluster: Any,
                 interval: float = DEFAULT_RECORD_INTERVAL,
                 hosts: Optional[List[str]] = None):
        names = hosts or [h.name for h in cluster]
        self.recorders: Dict[str, HostRecorder] = {
            name: HostRecorder(cluster.host(name), interval=interval)
            for name in names
        }

    def __getitem__(self, host: str) -> HostRecorder:
        return self.recorders[host]

    def stop(self) -> None:
        for rec in self.recorders.values():
            rec.stop()
