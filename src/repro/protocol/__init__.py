"""Custom XML-over-TCP protocol between rescheduler entities.

"We combine a custom XML based protocol with TCP/IP sockets to form
the communication subsystem of the rescheduler" (paper §3.3): message
types in :mod:`~repro.protocol.messages`, simulated-TCP endpoints in
:mod:`~repro.protocol.transport`, and the same messages over real
sockets in :mod:`repro.live.transport`.
"""

from .messages import (
    Ack,
    CandidateReply,
    CandidateRequest,
    ExpandCommand,
    MESSAGE_TYPES,
    MigrateCommand,
    ProtocolError,
    Register,
    ShrinkCommand,
    StatusQuery,
    StatusUpdate,
    Unregister,
    decode,
    encode,
)
from .transport import Endpoint, EndpointRegistry

__all__ = [
    "Ack",
    "CandidateReply",
    "CandidateRequest",
    "Endpoint",
    "EndpointRegistry",
    "ExpandCommand",
    "MESSAGE_TYPES",
    "MigrateCommand",
    "ProtocolError",
    "Register",
    "ShrinkCommand",
    "StatusQuery",
    "StatusUpdate",
    "Unregister",
    "decode",
    "encode",
]
