"""Custom XML-over-TCP protocol between rescheduler entities (§3.3)."""

from .messages import (
    Ack,
    CandidateReply,
    CandidateRequest,
    MESSAGE_TYPES,
    MigrateCommand,
    ProtocolError,
    Register,
    StatusUpdate,
    Unregister,
    decode,
    encode,
)
from .transport import Endpoint, EndpointRegistry

__all__ = [
    "Ack",
    "CandidateReply",
    "CandidateRequest",
    "Endpoint",
    "EndpointRegistry",
    "MESSAGE_TYPES",
    "MigrateCommand",
    "ProtocolError",
    "Register",
    "StatusUpdate",
    "Unregister",
    "decode",
    "encode",
]
