"""The custom XML message protocol (paper §3.3).

"We combine a custom XML based protocol with TCP/IP sockets to form the
communication subsystem of the rescheduler."  Every message type
round-trips through real XML (plain ASCII, transport-independent); the
encoded byte length is what the simulated network carries, so protocol
overhead measurements (Figure 6) reflect genuine message sizes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rules.states import SystemState


class ProtocolError(ValueError):
    """Malformed message."""


def _metrics_to_element(metrics: Dict[str, float]) -> ET.Element:
    elem = ET.Element("metrics")
    for key in sorted(metrics):
        m = ET.SubElement(elem, "m", name=key)
        m.text = repr(float(metrics[key]))
    return elem


def _metrics_from_element(elem: Optional[ET.Element]) -> Dict[str, float]:
    if elem is None:
        return {}
    return {m.get("name"): float(m.text) for m in elem.findall("m")}


@dataclass(frozen=True)
class Register:
    """One-time registration of a host's static information."""

    host: str
    static_info: Dict[str, object] = field(default_factory=dict)

    TYPE = "register"

    def body(self) -> ET.Element:
        elem = ET.Element("static")
        for key in sorted(self.static_info):
            item = ET.SubElement(elem, "i", name=key)
            item.text = str(self.static_info[key])
        return elem

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "Register":
        static = elem.find("static")
        info: Dict[str, object] = {}
        if static is not None:
            info = {i.get("name"): i.text for i in static.findall("i")}
        return cls(host=host, static_info=info)


@dataclass(frozen=True)
class StatusUpdate:
    """Periodic soft-state refresh: state + metrics + process list."""

    host: str
    state: SystemState
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Migration-enabled processes (ProcessInfo.as_dict entries).
    processes: List[dict] = field(default_factory=list)

    TYPE = "status"

    def body(self) -> ET.Element:
        elem = ET.Element("status", state=self.state.name.lower())
        elem.append(_metrics_to_element(self.metrics))
        procs = ET.SubElement(elem, "processes")
        for proc in self.processes:
            features = proc.get("features", ())
            if not isinstance(features, str):
                features = ",".join(features)
            p = ET.SubElement(
                procs,
                "p",
                pid=str(proc["pid"]),
                name=str(proc["name"]),
                start=repr(float(proc["start_time"])),
                eta=repr(float(proc["est_completion"])),
                locality=repr(float(proc.get("data_locality", 0.0))),
                minMem=str(int(proc.get("min_memory_bytes", 0))),
                minDisk=str(int(proc.get("min_disk_bytes", 0))),
                minCpu=repr(float(proc.get("min_cpu_speed", 0.0))),
                features=features,
            )
            # Malleability (world) attributes ride only when declared:
            # rigid processes keep the paper's exact message bytes.
            world = int(proc.get("world_size", 1))
            wmin = int(proc.get("min_world", 1))
            wmax = int(proc.get("max_world", 1))
            curve = proc.get("efficiency_curve", "")
            if not isinstance(curve, str):
                curve = ",".join(repr(float(v)) for v in curve)
            if world != 1:
                p.set("world", str(world))
            if wmin != 1:
                p.set("wmin", str(wmin))
            if wmax != 1:
                p.set("wmax", str(wmax))
            if curve:
                p.set("eff", curve)
        return elem

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "StatusUpdate":
        status = elem.find("status")
        if status is None:
            raise ProtocolError("status message without <status> body")
        procs = []
        procs_elem = status.find("processes")
        if procs_elem is not None:
            for p in procs_elem.findall("p"):
                procs.append({
                    "pid": int(p.get("pid")),
                    "name": p.get("name"),
                    "start_time": float(p.get("start")),
                    "est_completion": float(p.get("eta")),
                    "data_locality": float(p.get("locality", "0")),
                    "min_memory_bytes": int(p.get("minMem", "0")),
                    "min_disk_bytes": int(p.get("minDisk", "0")),
                    "min_cpu_speed": float(p.get("minCpu", "0")),
                    "features": p.get("features", ""),
                    "world_size": int(p.get("world", "1")),
                    "min_world": int(p.get("wmin", "1")),
                    "max_world": int(p.get("wmax", "1")),
                    "efficiency_curve": p.get("eff", ""),
                })
        return cls(
            host=host,
            state=SystemState[status.get("state", "free").upper()],
            metrics=_metrics_from_element(status.find("metrics")),
            processes=procs,
        )


@dataclass(frozen=True)
class Unregister:
    """Clean departure of a host."""

    host: str

    TYPE = "unregister"

    def body(self) -> ET.Element:
        return ET.Element("bye")

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "Unregister":
        return cls(host=host)


@dataclass(frozen=True)
class CandidateRequest:
    """Ask (a parent or sibling registry) for a migration destination.

    ``req_id`` correlates the eventual reply; ``hops`` bounds
    escalation through the registry hierarchy; ``exclude`` names hosts
    that must not be offered (e.g. the overloaded source).
    """

    host: str
    app_name: str = ""
    requirements_xml: str = ""
    req_id: str = ""
    hops: int = 0
    exclude: tuple = ()

    TYPE = "candidate-request"

    def body(self) -> ET.Element:
        elem = ET.Element(
            "want", app=self.app_name, reqId=self.req_id,
            hops=str(self.hops), exclude=",".join(self.exclude),
        )
        if self.requirements_xml:
            elem.append(ET.fromstring(self.requirements_xml))
        return elem

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "CandidateRequest":
        want = elem.find("want")
        if want is None:
            raise ProtocolError("candidate-request without <want> body")
        req = ""
        if len(want):
            req = ET.tostring(want[0], encoding="unicode")
        exclude = tuple(
            name for name in want.get("exclude", "").split(",") if name
        )
        return cls(
            host=host,
            app_name=want.get("app", ""),
            requirements_xml=req,
            req_id=want.get("reqId", ""),
            hops=int(want.get("hops", "0")),
            exclude=exclude,
        )


@dataclass(frozen=True)
class CandidateReply:
    """A recommended destination host (or none)."""

    host: str
    dest: Optional[str] = None
    req_id: str = ""

    TYPE = "candidate-reply"

    def body(self) -> ET.Element:
        elem = ET.Element("candidate", reqId=self.req_id)
        if self.dest:
            elem.set("dest", self.dest)
        return elem

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "CandidateReply":
        cand = elem.find("candidate")
        if cand is None:
            raise ProtocolError("candidate-reply without <candidate> body")
        return cls(host=host, dest=cand.get("dest"),
                   req_id=cand.get("reqId", ""))


@dataclass(frozen=True)
class MigrateCommand:
    """Registry → commander: move ``pid`` to ``dest``."""

    host: str  # the source host (the commander's host)
    pid: int
    dest: str
    reason: str = ""
    decision_seconds: float = 0.0

    TYPE = "migrate"

    def body(self) -> ET.Element:
        return ET.Element(
            "migrate",
            pid=str(self.pid),
            dest=self.dest,
            reason=self.reason,
            decision=repr(self.decision_seconds),
        )

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "MigrateCommand":
        mig = elem.find("migrate")
        if mig is None:
            raise ProtocolError("migrate message without <migrate> body")
        return cls(
            host=host,
            pid=int(mig.get("pid")),
            dest=mig.get("dest"),
            reason=mig.get("reason", ""),
            decision_seconds=float(mig.get("decision", "0")),
        )


@dataclass(frozen=True)
class ExpandCommand:
    """Registry → commander: grow ``pid``'s world onto ``dests``.

    The N:M generalization of :class:`MigrateCommand` — the source
    host keeps its rank, the world repartitions across the union at
    the next poll-point (docs/malleability.md).
    """

    host: str  # the source host (the commander's host)
    pid: int
    dests: tuple = ()
    reason: str = ""
    decision_seconds: float = 0.0

    TYPE = "expand"

    def body(self) -> ET.Element:
        return ET.Element(
            "expand",
            pid=str(self.pid),
            dests=",".join(self.dests),
            reason=self.reason,
            decision=repr(self.decision_seconds),
        )

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "ExpandCommand":
        exp = elem.find("expand")
        if exp is None:
            raise ProtocolError("expand message without <expand> body")
        dests = tuple(
            name for name in exp.get("dests", "").split(",") if name
        )
        return cls(
            host=host,
            pid=int(exp.get("pid")),
            dests=dests,
            reason=exp.get("reason", ""),
            decision_seconds=float(exp.get("decision", "0")),
        )


@dataclass(frozen=True)
class ShrinkCommand:
    """Registry → commander: retire ``pid``'s rank from its world.

    ``dest`` names a surviving peer host (the merge context the state
    folds into); the world repartitions across the remaining ranks at
    the next poll-point.
    """

    host: str  # the source host (the commander's host)
    pid: int
    dest: str = ""
    reason: str = ""
    decision_seconds: float = 0.0

    TYPE = "shrink"

    def body(self) -> ET.Element:
        return ET.Element(
            "shrink",
            pid=str(self.pid),
            dest=self.dest,
            reason=self.reason,
            decision=repr(self.decision_seconds),
        )

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "ShrinkCommand":
        shr = elem.find("shrink")
        if shr is None:
            raise ProtocolError("shrink message without <shrink> body")
        return cls(
            host=host,
            pid=int(shr.get("pid")),
            dest=shr.get("dest", ""),
            reason=shr.get("reason", ""),
            decision_seconds=float(shr.get("decision", "0")),
        )


@dataclass(frozen=True)
class StatusQuery:
    """Registry → monitor: request an immediate status report.

    The *pull* model of §3.2: "the registry/scheduler can decide when
    it needs the information and status of each host.  It then queries
    the current information to make more optimized decisions.  But,
    this also leads to the registry/scheduler having to make a query at
    runtime when a decision is expected, thus slowing down the
    process."
    """

    host: str  # the queried host

    TYPE = "status-query"

    def body(self) -> ET.Element:
        return ET.Element("query")

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "StatusQuery":
        return cls(host=host)


@dataclass(frozen=True)
class Ack:
    """Generic acknowledgement."""

    host: str
    ok: bool = True
    detail: str = ""

    TYPE = "ack"

    def body(self) -> ET.Element:
        return ET.Element("ack", ok=str(self.ok).lower(),
                          detail=self.detail)

    @classmethod
    def from_body(cls, host: str, elem: ET.Element) -> "Ack":
        ack = elem.find("ack")
        return cls(
            host=host,
            ok=(ack.get("ok", "true") == "true") if ack is not None else True,
            detail=ack.get("detail", "") if ack is not None else "",
        )


#: Registry of message classes by wire type.
MESSAGE_TYPES = {
    cls.TYPE: cls
    for cls in (Register, StatusUpdate, Unregister, CandidateRequest,
                CandidateReply, MigrateCommand, ExpandCommand,
                ShrinkCommand, StatusQuery, Ack)
}


def encode(msg, sender: str, timestamp: float) -> bytes:
    """Serialize a message to wire bytes (ASCII XML)."""
    root = ET.Element(
        "msg", type=msg.TYPE, sender=sender, host=msg.host,
        ts=repr(float(timestamp)),
    )
    root.append(msg.body())
    return ET.tostring(root, encoding="utf-8")


def decode(data: bytes):
    """Parse wire bytes back into (message, sender, timestamp)."""
    try:
        root = ET.fromstring(data)
    except ET.ParseError as exc:
        raise ProtocolError(f"bad XML: {exc}") from exc
    if root.tag != "msg":
        raise ProtocolError(f"unexpected root {root.tag!r}")
    mtype = root.get("type", "")
    cls = MESSAGE_TYPES.get(mtype)
    if cls is None:
        raise ProtocolError(f"unknown message type {mtype!r}")
    msg = cls.from_body(root.get("host", ""), root)
    return msg, root.get("sender", ""), float(root.get("ts", "0"))
