"""XML-over-(simulated)-TCP transport.

Each rescheduler entity owns an :class:`Endpoint` on its host.  Sending
a message encodes it to real XML bytes, moves those bytes through the
simulated network (so Figure 6's communication-overhead measurements
see genuine protocol traffic), and decodes on arrival — a full
serialization round-trip every hop, which catches anything that would
not survive a real wire.
"""

from __future__ import annotations

from typing import Any, Dict

from ..sim.resources import Store
from . import messages


class EndpointRegistry:
    """Name → endpoint directory (the DNS of the rescheduler mesh)."""

    def __init__(self):
        self._endpoints: Dict[str, "Endpoint"] = {}

    def register(self, endpoint: "Endpoint") -> None:
        if endpoint.address in self._endpoints:
            raise ValueError(f"address {endpoint.address!r} already bound")
        self._endpoints[endpoint.address] = endpoint

    def lookup(self, address: str) -> "Endpoint":
        try:
            return self._endpoints[address]
        except KeyError:
            raise KeyError(f"no endpoint bound at {address!r}") from None

    def addresses(self) -> list:
        return sorted(self._endpoints)


class Endpoint:
    """One entity's mailbox + sender on a host."""

    def __init__(
        self,
        host: Any,
        directory: EndpointRegistry,
        name: str,
    ):
        self.host = host
        self.env = host.env
        self.network = host.network
        self.name = name
        self.address = f"{name}@{host.name}"
        self.inbox = Store(self.env)
        self.bytes_out = 0
        self.bytes_in = 0
        self.directory = directory
        directory.register(self)

    def send(self, dest_address: str, msg) -> Any:
        """Send ``msg``; returns an event completing on delivery.

        Delivery failures (dest host down) fail the event — callers
        treat the message as lost, soft-state style.
        """
        dest = self.directory.lookup(dest_address)
        data = messages.encode(msg, sender=self.address,
                               timestamp=self.env.now)
        self.bytes_out += len(data)

        def _deliver():
            if dest.host is self.host:
                yield self.env.timeout(self.network.latency)
            else:
                yield self.network.transfer(
                    self.host.name, dest.host.name, len(data),
                    label=f"proto:{msg.TYPE}",
                )
            decoded, sender, ts = messages.decode(data)
            dest.bytes_in += len(data)
            yield dest.inbox.put((decoded, sender, ts))
            return True

        return self.env.process(_deliver(), name=f"send:{msg.TYPE}")

    def send_and_forget(self, dest_address: str, msg) -> None:
        """Fire-and-forget send; delivery failures are swallowed
        (lost datagram — the soft-state protocol tolerates it)."""
        proc = self.send(dest_address, msg)

        def _swallow(event):
            if not event._ok:
                event._defused = True

        proc.callbacks.append(_swallow)

    def recv(self):
        """Event yielding the next (message, sender, timestamp)."""
        return self.inbox.get()
