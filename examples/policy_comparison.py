#!/usr/bin/env python
"""Policy comparison — the Table 2 scenario end to end.

Five workstations: ws1 runs the application and gets overloaded; ws2
is busy streaming ~7 MB/s to ws5 (which keeps its load just *below*
the migration threshold — the trap); ws3 carries a 2.5 load; ws4 is
free.  Three policies:

* Policy 1 — never migrate;
* Policy 2 — load/process thresholds only (walks into the ws2 trap);
* Policy 3 — Policy 2 plus communication-flow conditions (finds ws4).

Run:  python examples/policy_comparison.py
"""

from repro.analysis import run_table2
from repro.metrics import format_table


def main() -> None:
    print("running the three policies on identical scenarios ...")
    results = run_table2(seed=0)
    rows = [results[i].row() for i in (1, 2, 3)]
    print()
    print(format_table(
        ["policy", "total s", "migrated to", "source s", "dest s",
         "migration s"],
        rows,
        title="Table 2 reproduction (paper: 983.6 / 433.27→ws2 / "
              "329.71→ws4)",
    ))
    print()
    speedup2 = results[1].total_seconds / results[2].total_seconds
    speedup3 = results[1].total_seconds / results[3].total_seconds
    print(f"Policy 2 speedup over no-migration: {speedup2:.2f}x")
    print(f"Policy 3 speedup over no-migration: {speedup3:.2f}x "
          f"(paper: ~3x, 'execution time is reduced to 33.5%')")
    assert all(results[i].checksum_ok for i in (1, 2, 3)), \
        "migrated runs must produce identical results"
    print("all three runs produced identical application results")


if __name__ == "__main__":
    main()
