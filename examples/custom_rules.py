#!/usr/bin/env python
"""The rule engine — parsing and evaluating the paper's rule files.

Loads the verbatim Figure 3/4 rule file (simple rules over vmstat /
netstat style scripts plus the weighted complex rule), binds it to a
live simulated host through the script engine, and shows the host
state respond as load and connections change.

Run:  python examples/custom_rules.py
"""

from repro import Cluster
from repro.cluster import BulkTransferLoad, CpuHog
from repro.monitor import SimScriptEngine
from repro.rules import PAPER_RULE_FILE, RuleEvaluator, parse_rule_file


def main() -> None:
    print("the paper's rule file (Figures 3-4):\n")
    print(PAPER_RULE_FILE)

    ruleset = parse_rule_file(PAPER_RULE_FILE)
    cluster = Cluster(n_hosts=2, seed=0)
    host = cluster["ws1"]
    engine = SimScriptEngine(host)
    evaluator = RuleEvaluator(ruleset, engine)

    def show(label):
        engine.refresh()
        parts = {
            "idle%": engine("processorStatus.sh"),
            "sockets": engine("ntStatIpv4.sh", "ESTABLISHED"),
            "load": engine("loadAvg.sh"),
            "procs": engine("procCount.sh"),
        }
        states = {
            rule.name: evaluator.evaluate_rule(rule.number).name.lower()
            for rule in ruleset
        }
        print(f"{label:28s} {parts}")
        for name, state in states.items():
            print(f"    {name:18s} -> {state}")
        print(f"    host state         -> "
              f"{evaluator.evaluate_host_state().name.lower()}")

    cluster.run(until=60)
    show("idle host:")

    hogs = CpuHog(host, count=3, name="burn")
    cluster.run(until=cluster.env.now + 300)
    show("after 3 CPU hogs, 5 min:")

    hogs.stop()
    bulk = BulkTransferLoad(host, cluster["ws2"], rate=7e6)
    cluster.run(until=cluster.env.now + 300)
    show("hogs gone, 7 MB/s stream:")
    bulk.stop()


if __name__ == "__main__":
    main()
