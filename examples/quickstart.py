#!/usr/bin/env python
"""Quickstart: autonomic rescheduling of one MPI task.

Builds a 3-workstation cluster, deploys the rescheduler (per-host
monitors + commanders, one registry/scheduler), starts the paper's
``test_tree`` application on ws1, then overloads ws1.  The runtime
notices, picks a destination, and migrates the running process — which
finishes with the *exact same checksum* it would have produced without
moving.

Run:  python examples/quickstart.py
"""

from repro import Cluster, Rescheduler, ReschedulerConfig, policy_2
from repro.cluster import CpuHog
from repro.workloads import TestTreeApp


def main() -> None:
    cluster = Cluster(n_hosts=3, seed=0)
    rescheduler = Rescheduler(
        cluster,
        policy=policy_2(),  # load > 2 or procs > 150 → migrate
        config=ReschedulerConfig(interval=10.0, sustain=3),
    )

    params = {"levels": 11, "trees": 60, "node_cost": 2e-4, "seed": 1}
    app = rescheduler.launch_app(TestTreeApp(), "ws1", params=params)
    print(f"test_tree started on ws1 "
          f"(~{TestTreeApp.total_work(params):.0f} CPU-seconds of work)")

    def inject(env):
        yield env.timeout(60)
        CpuHog(cluster["ws1"], count=4, name="surprise-load")
        print(f"[t={env.now:7.1f}s] four CPU hogs land on ws1")

    cluster.env.process(inject(cluster.env))
    cluster.env.run(until=app.done)

    print(f"[t={app.finished_at:7.1f}s] application finished on "
          f"{app.host.name}")
    for decision in rescheduler.decisions:
        print(f"  decision at t={decision.at:.1f}s: "
              f"{decision.source} -> {decision.dest} "
              f"(decided in {decision.decision_seconds * 1000:.1f} ms)")
    for record in app.migrations:
        print(f"  migration {record.source} -> {record.dest}: "
              f"{record.memory_bytes / 1024:.0f} KB of state, "
              f"total {record.total_seconds:.2f}s "
              f"(spawn {record.init_seconds:.2f}s, "
              f"resume {record.resume_seconds:.2f}s)")

    expected = TestTreeApp.expected_checksum(params)
    status = "OK" if abs(app.result - expected) < 1e-6 else "MISMATCH"
    print(f"checksum {app.result:.6f} vs unmigrated ground truth "
          f"{expected:.6f} -> {status}")

    from repro.core import build_timeline, format_timeline

    print("\nfull event timeline:")
    print(format_timeline(build_timeline(rescheduler)))


if __name__ == "__main__":
    main()
