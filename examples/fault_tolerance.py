#!/usr/bin/env python
"""Fault tolerance through soft state — a crashed host vanishes.

The paper's conclusion points at fault tolerance as a natural use:
"reschedule when the machine will shut down".  This example shows the
defensive half the implemented system already provides: a host that
crashes stops refreshing its soft-state lease, the registry marks it
*unavailable*, and migrations route around it — including a migration
that was about to target it.

Run:  python examples/fault_tolerance.py
"""

from repro import Cluster, Rescheduler, ReschedulerConfig, policy_2
from repro.cluster import CpuHog
from repro.rules import SystemState
from repro.workloads import TestTreeApp


def main() -> None:
    cluster = Cluster(n_hosts=3, seed=0)
    rescheduler = Rescheduler(
        cluster, policy=policy_2(),
        config=ReschedulerConfig(interval=10.0, sustain=3, lease=25.0),
    )
    params = {"levels": 10, "trees": 150, "node_cost": 4e-4, "seed": 2}
    app = rescheduler.launch_app(TestTreeApp(), "ws1", params=params)
    table = rescheduler.registry.table

    def scenario(env):
        yield env.timeout(30)
        # ws2 would be the first-fit destination... but it dies.
        cluster["ws2"].crash()
        print(f"[t={env.now:.0f}s] ws2 crashes (no more soft-state "
              f"pushes)")
        yield env.timeout(40)
        state = table.effective_state(table.get("ws2"))
        print(f"[t={env.now:.0f}s] registry sees ws2 as "
              f"{state.name.lower()}")
        assert state is SystemState.UNAVAILABLE
        CpuHog(cluster["ws1"], count=4, name="overload")
        print(f"[t={env.now:.0f}s] ws1 becomes overloaded")

    cluster.env.process(scenario(cluster.env))
    cluster.env.run(until=app.done)

    decision = next(d for d in rescheduler.decisions if d.dest)
    print(f"[t={decision.at:.1f}s] decision: migrate to {decision.dest} "
          f"(ws2 was skipped)")
    print(f"[t={app.finished_at:.1f}s] app finished on {app.host.name}")
    assert app.host.name == "ws3"
    expected = TestTreeApp.expected_checksum(params)
    print("result correct:", abs(app.result - expected) < 1e-6)


if __name__ == "__main__":
    main()
