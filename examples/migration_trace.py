#!/usr/bin/env python
"""Anatomy of one migration — the §5.2 efficiency experiment.

Reproduces the paper's Figure 7/8 timeline and prints the phase
breakdown plus ASCII plots of CPU utilization and network rates around
the migration window.

Run:  python examples/migration_trace.py
"""

from repro.analysis import run_efficiency_experiment
from repro.metrics import ascii_plot


def main() -> None:
    print("running the efficiency scenario "
          "(app at t=280s, overload at t=428s) ...")
    result = run_efficiency_experiment()
    rec = result.record
    assert rec is not None and rec.succeeded

    print(f"""
migration timeline (paper values in brackets):
  load injected            t = {result.load_injected_at:7.1f} s
  overload confirmed       t = {result.decision.at:7.1f} s   \
(warm-up {result.warmup_seconds:.1f} s [72 s])
  decision took                {rec.decision_seconds * 1000:7.1f} ms  [2 ms]
  poll-point reached           {rec.time_to_pollpoint:7.2f} s   [1.4 s]
  initialized process up       {rec.init_seconds:7.2f} s   [0.3 s]
  execution resumed            {rec.resume_seconds:7.2f} s   [<1 s]
  residual state drained       {rec.drain_seconds:7.2f} s
  migration complete           {rec.total_seconds:7.2f} s   [7.5 s]
  memory state moved           {rec.memory_bytes / 2**20:7.1f} MB
""")
    print(ascii_plot(
        [result.cpu_source, result.cpu_dest],
        title="Figure 7 — CPU utilization",
        labels=["source ws1", "destination ws2"],
    ))
    print()
    print(ascii_plot(
        [result.send_source, result.recv_dest],
        title="Figure 8 — network KB/s (state-transfer burst)",
        labels=["ws1 send", "ws2 recv"],
    ))
    print()
    print("execution resumed", rec.completed_at - rec.resumed_at,
          "seconds BEFORE the transfer finished — restoration overlaps "
          "computation, as in the paper.")
    print("checksum identical to an unmigrated run:", result.checksum_ok)


if __name__ == "__main__":
    main()
