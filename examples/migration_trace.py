#!/usr/bin/env python
"""Anatomy of one migration — the §5.2 efficiency experiment, traced.

Reproduces the paper's Figure 7/8 timeline with the structured tracing
subsystem recording every step: monitor samples, rule evaluations,
registry decision, commander signal and the HPCM spawn / capture /
transfer / drain spans.  Prints the phase breakdown (both from the
migration record and from the trace spans), ASCII plots of CPU
utilization and network rates around the migration window, and writes
the full trace as JSONL for inspection with ``repro trace`` tooling or
conversion to Chrome/Perfetto format (see docs/tracing.md).

Run:  python examples/migration_trace.py [trace-out.jsonl]
"""

import sys

from repro.analysis import run_efficiency_experiment
from repro.metrics import ascii_plot, format_phase_table
from repro.trace import Tracer, export_jsonl, use
from repro.trace.events import EV_HPCM_MIGRATION


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "migration_trace.jsonl"

    print("running the efficiency scenario "
          "(app at t=280s, overload at t=428s) ...")
    tracer = Tracer()
    with use(tracer):
        result = run_efficiency_experiment()
    rec = result.record
    assert rec is not None and rec.succeeded

    mig_spans = [r for r in tracer.by_name(EV_HPCM_MIGRATION) if r.is_span]
    assert mig_spans and mig_spans[0].attrs.get("succeeded")

    print(f"""
migration timeline (paper values in brackets):
  load injected            t = {result.load_injected_at:7.1f} s
  overload confirmed       t = {result.decision.at:7.1f} s   \
(warm-up {result.warmup_seconds:.1f} s [72 s])
  decision took                {rec.decision_seconds * 1000:7.1f} ms  [2 ms]
  poll-point reached           {rec.time_to_pollpoint:7.2f} s   [1.4 s]
  initialized process up       {rec.init_seconds:7.2f} s   [0.3 s]
  execution resumed            {rec.resume_seconds:7.2f} s   [<1 s]
  residual state drained       {rec.drain_seconds:7.2f} s
  migration complete           {rec.total_seconds:7.2f} s   [7.5 s]
  memory state moved           {rec.memory_bytes / 2**20:7.1f} MB
""")
    print(format_phase_table(tracer.records,
                             title="same story, from the trace spans"))
    print()
    print(ascii_plot(
        [result.cpu_source, result.cpu_dest],
        title="Figure 7 — CPU utilization",
        labels=["source ws1", "destination ws2"],
    ))
    print()
    print(ascii_plot(
        [result.send_source, result.recv_dest],
        title="Figure 8 — network KB/s (state-transfer burst)",
        labels=["ws1 send", "ws2 recv"],
    ))
    print()
    print("execution resumed", rec.completed_at - rec.resumed_at,
          "seconds BEFORE the transfer finished — restoration overlaps "
          "computation, as in the paper.")
    print("checksum identical to an unmigrated run:", result.checksum_ok)

    export_jsonl(tracer.records, out_path)
    print(f"trace written: {out_path} ({len(tracer.records)} records)")


if __name__ == "__main__":
    main()
