#!/usr/bin/env python
"""Hierarchical registries — migrating across administrative domains.

Two six-host "virtual organizations", each with its own
registry/scheduler, under a common parent registry (paper §3.2: "We
can configure a local registry/scheduler on a local cluster and its
upper level registry/scheduler to a specific organization, such as a
Virtual Organization in a Grid environment").

Domain A becomes fully overloaded; its registry finds no local
destination and escalates to the parent, which delegates to domain B —
the process migrates across the domain boundary.

Run:  python examples/hierarchical_grid.py
"""

from repro import Cluster, Rescheduler, ReschedulerConfig, policy_2
from repro.cluster import CpuHog
from repro.protocol import EndpointRegistry
from repro.workloads import TestTreeApp


def main() -> None:
    cluster = Cluster(n_hosts=12, seed=0)
    names = [h.name for h in cluster]
    directory = EndpointRegistry()

    parent = Rescheduler(
        cluster, policy=policy_2(),
        config=ReschedulerConfig(interval=10.0),
        monitored_hosts=[],
        registry_host=names[0],
        registry_name="registry-parent",
        directory=directory,
    )
    domain_a = Rescheduler(
        cluster, policy=policy_2(),
        config=ReschedulerConfig(interval=10.0, sustain=3),
        monitored_hosts=names[:6],
        registry_host=names[0],
        directory=directory,
        parent_address=parent.registry.address,
    )
    domain_b = Rescheduler(
        cluster, policy=policy_2(),
        config=ReschedulerConfig(interval=10.0, sustain=3),
        monitored_hosts=names[6:],
        registry_host=names[6],
        directory=directory,
        parent_address=parent.registry.address,
    )
    print(f"domain A: {names[:6]} (registry {domain_a.registry.address})")
    print(f"domain B: {names[6:]} (registry {domain_b.registry.address})")
    print(f"parent:   {parent.registry.address}")

    params = {"levels": 10, "trees": 150, "node_cost": 4e-4, "seed": 5}
    app = domain_a.launch_app(TestTreeApp(), "ws1", params=params)

    def flood_domain_a(env):
        yield env.timeout(40)
        print(f"[t={env.now:.0f}s] every domain-A host gets 4 CPU hogs")
        for name in names[:6]:
            CpuHog(cluster[name], count=4, name="load")

    cluster.env.process(flood_domain_a(cluster.env))
    cluster.env.run(until=app.done)

    decision = next(d for d in domain_a.registry.decisions if d.dest)
    print(f"[t={decision.at:.1f}s] domain A escalated "
          f"(escalated={decision.escalated}) -> destination "
          f"{decision.dest}")
    print(f"[t={app.finished_at:.1f}s] app finished on {app.host.name} "
          f"(crossed into domain B: {app.host.name in names[6:]})")
    assert app.host.name in names[6:]
    expected = TestTreeApp.expected_checksum(params)
    print("result correct:", abs(app.result - expected) < 1e-6)


if __name__ == "__main__":
    main()
