#!/usr/bin/env python
"""A cooperating MPI application under autonomic management.

A 4-rank Jacobi stencil runs across four workstations, exchanging halo
rows every iteration.  Mid-run, rank 1's host gets overloaded; the
rescheduler migrates *just that rank* to a spare host.  The halo
exchange keeps flowing — message routing follows the communicator's
rank → process mapping through the move — and the converged solution
is identical to an undisturbed run.

Run:  python examples/mpi_stencil.py
"""

from repro import (
    Cluster,
    MetricPredicate,
    MigrationPolicy,
    Rescheduler,
    ReschedulerConfig,
)
from repro.cluster import CpuHog
from repro.workloads import StencilApp

#: Like policy 2, but a destination must host no application process at
#: all.  (A load threshold would misfire here: ranks blocked in halo
#: waits let their hosts' load averages decay, making them look idle.)
POLICY = MigrationPolicy(
    name="stencil-demo",
    triggers=(MetricPredicate("loadavg1", ">", 2.0),),
    dest_conditions=(MetricPredicate("proc_count", "<", 1.0),),
)


def run(disturb: bool) -> dict:
    cluster = Cluster(n_hosts=5, seed=0)
    rs = Rescheduler(
        cluster, policy=POLICY,
        config=ReschedulerConfig(interval=10.0, sustain=3),
    )
    params = {"rows": 32, "cols": 32, "iterations": 120,
              "cell_cost": 2e-3, "seed": 0}
    ranks = rs.launch_mpi_app(
        lambda r: StencilApp(r),
        ["ws1", "ws2", "ws3", "ws4"],
        params=params,
    )

    if disturb:
        def inject(env):
            yield env.timeout(40)
            CpuHog(cluster["ws2"], count=4, name="surprise")
            print(f"[t={env.now:.0f}s] ws2 (hosting rank 1) overloaded")

        cluster.env.process(inject(cluster.env))

    done = cluster.env.all_of([rt.done for rt in ranks])
    cluster.env.run(until=done)
    return {
        "result": ranks[0].result,
        "hosts": [rt.host.name for rt in ranks],
        "migrations": sum(rt.migration_count for rt in ranks),
        "finished": max(rt.finished_at for rt in ranks),
    }


def main() -> None:
    print("undisturbed run ...")
    baseline = run(disturb=False)
    print(f"  ranks ended on {baseline['hosts']}, "
          f"t={baseline['finished']:.0f}s")

    print("disturbed run (rank 1's host overloaded mid-run) ...")
    disturbed = run(disturb=True)
    print(f"  ranks ended on {disturbed['hosts']}, "
          f"{disturbed['migrations']} migration(s), "
          f"t={disturbed['finished']:.0f}s")

    same = abs(disturbed["result"]["mean"]
               - baseline["result"]["mean"]) < 1e-9
    print(f"solutions identical: {same} "
          f"(mean={baseline['result']['mean']:.6f})")
    assert same
    assert disturbed["hosts"][1] != "ws2"


if __name__ == "__main__":
    main()
