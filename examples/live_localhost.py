#!/usr/bin/env python
"""Live mode — the rescheduler on real sockets, threads and /proc.

Three worker nodes and a registry run as real threads on this machine,
exchanging the same XML protocol over genuine localhost TCP.  A
compute task (Σ√i, really computed) starts on node A; synthetic load
lands on A; the registry notices the overload through soft-state
pushes, commands a migration, and the task's pickled state crosses a
real socket to node C where it resumes — finishing with the exact
expected result.

Run:  python examples/live_localhost.py    (takes a few wall seconds)
"""

import time

from repro.core import MetricPredicate, MigrationPolicy
from repro.live import (
    LiveNode,
    LiveRegistry,
    snapshot,
    sqrt_sum_expected,
    sqrt_sum_state,
)
from repro.live.proc_sensors import CpuIdleSampler, NetRateSampler


def main() -> None:
    print("this machine right now:",
          {k: round(v, 2) for k, v in
           snapshot(CpuIdleSampler(), NetRateSampler()).items()})

    policy = MigrationPolicy(
        name="live-demo",
        dest_conditions=(MetricPredicate("loadavg1", "<", 1.0),),
    )
    registry = LiveRegistry(policy=policy, lease=5.0,
                            command_cooldown=0.5)
    nodes = {
        name: LiveNode(name, registry_address=registry.address,
                       interval=0.1)
        for name in ("node-a", "node-b", "node-c")
    }
    print(f"registry listening on {registry.address}")
    for name, node in nodes.items():
        print(f"{name} on {node.address}")

    n = 40_000_000
    task = nodes["node-a"].submit(
        "sqrt_sum", sqrt_sum_state(n=n, chunk=500_000),
        est_seconds=120.0,
    )
    print(f"\ntask {task.task_id} (sum of {n:,} square roots) "
          f"started on node-a")

    time.sleep(0.4)
    nodes["node-a"].inject_load(3.0)
    # node-b is made busy so the registry must pick node-c.
    nodes["node-b"].inject_load(1.2)
    print("synthetic overload injected on node-a "
          "(and node-b made busy)")

    deadline = time.monotonic() + 60
    winner = None
    while time.monotonic() < deadline:
        for name, node in nodes.items():
            if node.completed:
                winner = (name, node.completed[0])
                break
        if winner:
            break
        time.sleep(0.1)

    assert winner, "task did not finish in time"
    name, done = winner
    for decision in registry.decisions:
        if decision.dest:
            print(f"registry decision: {decision.source} -> "
                  f"{decision.dest}")
    print(f"\ntask finished on {name} after {done.hops} migration(s)")
    expected = sqrt_sum_expected(n)
    print(f"result {done.result['acc']:.4f} vs expected "
          f"{expected:.4f} -> "
          f"{'OK' if abs(done.result['acc'] - expected) < 1e-3 else 'BAD'}")
    assert name == "node-c"

    for node in nodes.values():
        node.stop()
    registry.stop()


if __name__ == "__main__":
    main()
